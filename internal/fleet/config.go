// Package fleet spawns and supervises a population of in-process LOCKSS
// nodes on loopback from one declarative config: it drives a scheduled
// fault plan (damage injection, node kill/restart, stalled peers, subnet
// partitions, steady churn) with a seeded PRNG, scrapes every node's admin
// /metrics and /healthz on an interval, and emits one machine-readable JSON
// report of the run — per-node and aggregate counters over time, repair
// convergence, and the final unrepaired-damage count — plus a human summary
// table. It is how the paper's population-scale attrition settings are
// operated on one machine.
package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"
)

// Duration is a time.Duration that marshals as a human string ("1.5s") and
// unmarshals from either a string or integer nanoseconds, so configs read
// naturally.
type Duration time.Duration

func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

func (d *Duration) UnmarshalJSON(b []byte) error {
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	switch x := v.(type) {
	case string:
		p, err := time.ParseDuration(x)
		if err != nil {
			return fmt.Errorf("bad duration %q: %w", x, err)
		}
		*d = Duration(p)
	case float64:
		*d = Duration(time.Duration(x))
	default:
		return fmt.Errorf("bad duration %v (want \"1.5s\" or nanoseconds)", v)
	}
	return nil
}

func (d Duration) String() string { return time.Duration(d).String() }

// Fault is one scheduled event in the fault plan. Node numbering is 1-based
// (node IDs); 0 means "pick one with the seeded PRNG" where a node is
// needed. Kinds:
//
//	damage     corrupt one block (Block, or random when -1) of AU on Node
//	kill       stop Node abruptly (Stop, not drain)
//	restart    rebuild and restart a killed Node from its surviving state
//	stall      wedge Node's actor loop (its admin /healthz goes red)
//	unstall    release a stalled Node
//	partition  isolate Subnet from everyone else (addresses blackholed,
//	           live sessions severed on both sides)
//	heal       undo the partition
//
// For, when positive, schedules the inverse event automatically at At+For:
// kill→restart, stall→unstall, partition→heal.
type Fault struct {
	At     Duration `json:"at"`
	Kind   string   `json:"kind"`
	Node   int      `json:"node,omitempty"`
	AU     int      `json:"au,omitempty"`
	Block  int      `json:"block,omitempty"`
	Subnet []int    `json:"subnet,omitempty"`
	For    Duration `json:"for,omitempty"`
}

// Churn, when Interval is positive, kills one random node every Interval
// and restarts it Down later — the paper's steady component of attrition,
// distinct from the targeted faults in the plan.
type Churn struct {
	Interval Duration `json:"interval"`
	Down     Duration `json:"down"`
}

// Config declares one fleet run.
type Config struct {
	// Nodes is the population size. Every node holds every AU and has every
	// other node in its address book.
	Nodes int `json:"nodes"`
	// AUs and AUSize shape the preserved content; every node synthesizes
	// identical replicas from the shared publisher stream.
	AUs       int   `json:"aus"`
	AUSize    int64 `json:"au_size"`
	BlockSize int64 `json:"block_size"`
	// Seed drives every random choice in the run (fault targets, random
	// blocks, churn victims). Same config + same seed = same schedule.
	Seed uint64 `json:"seed"`
	// Duration is total run time; ScrapeInterval paces the metrics sweep.
	Duration       Duration `json:"duration"`
	ScrapeInterval Duration `json:"scrape_interval"`
	// PollInterval compresses the protocol timescale, as in lockss-node
	// -interval. Quorum and InnerCircle size the polls independently of the
	// population (paper-style fixed quorum); defaults 3 and 5.
	PollInterval Duration `json:"poll_interval"`
	Quorum       int      `json:"quorum,omitempty"`
	InnerCircle  int      `json:"inner_circle,omitempty"`
	// DataDir, when set, backs every node with a durable on-disk store
	// under DataDir/node-N; empty keeps the whole fleet in memory. Durable
	// fleets survive kill/restart with their damage state; in-memory nodes
	// restart with pristine publisher content.
	DataDir   string   `json:"data_dir,omitempty"`
	ScrubPace Duration `json:"scrub_pace,omitempty"`
	// ScrubWorkers shards each node's scrubber; ScrubBandwidth caps its
	// total read rate in bytes/second (0 = unlimited). See store.ScrubConfig.
	ScrubWorkers   int   `json:"scrub_workers,omitempty"`
	ScrubBandwidth int64 `json:"scrub_bandwidth,omitempty"`
	// Transport knobs, as in lockss-node.
	SendQueue         int `json:"send_queue,omitempty"`
	MaxInbound        int `json:"max_inbound,omitempty"`
	MaxInboundPerAddr int `json:"max_inbound_per_addr,omitempty"`

	Faults []Fault `json:"faults,omitempty"`
	Churn  *Churn  `json:"churn,omitempty"`
}

// withDefaults fills zero fields with a small demo-scale fleet.
func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 10
	}
	if c.AUs == 0 {
		c.AUs = 1
	}
	if c.AUSize == 0 {
		c.AUSize = 128 << 10
	}
	if c.BlockSize == 0 {
		c.BlockSize = 32 << 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Duration == 0 {
		c.Duration = Duration(10 * time.Second)
	}
	if c.ScrapeInterval == 0 {
		c.ScrapeInterval = Duration(2 * time.Second)
	}
	if c.PollInterval == 0 {
		c.PollInterval = Duration(1500 * time.Millisecond)
	}
	if c.Quorum == 0 {
		c.Quorum = 3
	}
	if c.InnerCircle == 0 {
		c.InnerCircle = 5
	}
	if c.ScrubPace == 0 {
		c.ScrubPace = Duration(50 * time.Millisecond)
	}
	if c.ScrubWorkers == 0 {
		c.ScrubWorkers = 1
	}
	if c.SendQueue == 0 {
		c.SendQueue = 128
	}
	if c.MaxInbound == 0 {
		c.MaxInbound = 4096
	}
	if c.MaxInboundPerAddr == 0 {
		// The whole fleet shares 127.0.0.1.
		c.MaxInboundPerAddr = 4096
	}
	return c
}

// Validate checks the declared run is realizable.
func (c Config) Validate() error {
	if c.Nodes < 3 {
		return fmt.Errorf("fleet: nodes must be >= 3 (got %d)", c.Nodes)
	}
	if c.AUs < 1 || c.AUSize < 1 || c.BlockSize < 1 {
		return fmt.Errorf("fleet: aus/au_size/block_size must be positive")
	}
	if c.InnerCircle >= c.Nodes {
		return fmt.Errorf("fleet: inner_circle %d must be < nodes %d", c.InnerCircle, c.Nodes)
	}
	if c.Quorum > c.InnerCircle {
		return fmt.Errorf("fleet: quorum %d exceeds inner_circle %d", c.Quorum, c.InnerCircle)
	}
	if c.ScrubWorkers < 0 {
		return fmt.Errorf("fleet: scrub_workers must be >= 0 (got %d)", c.ScrubWorkers)
	}
	if c.ScrubBandwidth < 0 {
		return fmt.Errorf("fleet: scrub_bandwidth must be >= 0 (got %d)", c.ScrubBandwidth)
	}
	for i, f := range c.Faults {
		if err := c.validateFault(f); err != nil {
			return fmt.Errorf("fleet: fault %d: %w", i, err)
		}
	}
	if c.Churn != nil && c.Churn.Interval > 0 && c.Churn.Down <= 0 {
		return fmt.Errorf("fleet: churn.down must be positive")
	}
	return nil
}

func (c Config) validateFault(f Fault) error {
	if f.Node < 0 || f.Node > c.Nodes {
		return fmt.Errorf("node %d out of range 0..%d", f.Node, c.Nodes)
	}
	switch f.Kind {
	case "damage":
		if f.AU < 1 || f.AU > c.AUs {
			return fmt.Errorf("damage AU %d out of range 1..%d", f.AU, c.AUs)
		}
		if f.For != 0 {
			return fmt.Errorf("damage has no inverse; drop \"for\"")
		}
	case "kill", "restart", "stall", "unstall":
		// Node 0 = random is fine; no extra fields.
	case "partition", "heal":
		if f.Kind == "partition" && len(f.Subnet) == 0 {
			return fmt.Errorf("partition needs a subnet")
		}
		for _, n := range f.Subnet {
			if n < 1 || n > c.Nodes {
				return fmt.Errorf("subnet node %d out of range 1..%d", n, c.Nodes)
			}
		}
	default:
		return fmt.Errorf("unknown fault kind %q", f.Kind)
	}
	return nil
}

// LoadConfig reads a fleet config file. Lines whose first non-blank
// characters are "//" are comments; everything else must be JSON. Defaults
// are filled and the result validated.
func LoadConfig(path string) (Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return Config{}, err
	}
	defer f.Close()
	var b strings.Builder
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(strings.TrimSpace(line), "//") {
			continue
		}
		b.WriteString(line)
		b.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return Config{}, err
	}
	var c Config
	dec := json.NewDecoder(strings.NewReader(b.String()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("fleet: parse %s: %w", path, err)
	}
	c = c.withDefaults()
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// schedule resolves the fault plan into a time-ordered event list: churn is
// expanded into kill/restart pairs, "for" sugar into inverse events, and
// every random choice (node 0, block -1) pinned by the seeded PRNG — so the
// whole run is decided before the first node boots.
func (c Config) schedule(rng *rand.Rand) []Fault {
	var out []Fault
	pin := func(f Fault) Fault {
		if f.Node == 0 {
			switch f.Kind {
			case "damage", "kill", "stall":
				f.Node = 1 + rng.Intn(c.Nodes)
			}
		}
		if f.Kind == "damage" && f.Block < 0 {
			blocks := int((c.AUSize + c.BlockSize - 1) / c.BlockSize)
			f.Block = rng.Intn(blocks)
		}
		return f
	}
	for _, f := range c.Faults {
		f = pin(f)
		out = append(out, f)
		if f.For > 0 {
			inv := Fault{At: f.At + f.For, Node: f.Node, Subnet: f.Subnet}
			switch f.Kind {
			case "kill":
				inv.Kind = "restart"
			case "stall":
				inv.Kind = "unstall"
			case "partition":
				inv.Kind = "heal"
			}
			if inv.Kind != "" {
				out = append(out, inv)
			}
		}
	}
	if c.Churn != nil && c.Churn.Interval > 0 {
		for at := c.Churn.Interval; at+c.Churn.Down < c.Duration; at += c.Churn.Interval {
			victim := 1 + rng.Intn(c.Nodes)
			out = append(out,
				Fault{At: at, Kind: "kill", Node: victim},
				Fault{At: at + c.Churn.Down, Kind: "restart", Node: victim})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}
