package fleet

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lockss/internal/admin"
	"lockss/internal/content"
	"lockss/internal/effort"
	"lockss/internal/ids"
	"lockss/internal/node"
	"lockss/internal/protocol"
	"lockss/internal/reputation"
	"lockss/internal/store"
)

// blackhole is where a partitioned peer's address points: a loopback port
// nothing listens on, so dials fail fast and back off.
const blackhole = "127.0.0.1:1"

// member is one supervised node. All fields are owned by the fleet's run
// loop; scrape workers receive copies of the addresses they need.
type member struct {
	idx  int        // 0-based slot
	id   ids.PeerID // 1-based, == idx+1
	n    *node.Node
	adm  *admin.Server
	st   *store.Store // nil for in-memory fleets
	dir  string       // store dir, "" for in-memory
	seed uint64

	protoAddr string // current protocol listen address
	adminAddr string // current admin listen address

	down    bool
	stalled chan struct{} // non-nil while the actor loop is wedged
}

// Fleet supervises a population of in-process nodes.
type Fleet struct {
	cfg     Config
	rng     *rand.Rand
	logf    func(format string, args ...any)
	members []*member
	// partition holds the currently isolated subnet (1-based ids); empty
	// means fully connected. Restarted nodes re-apply it.
	partition map[int]bool
}

// New builds a fleet from a validated config. Call Run to operate it.
func New(cfg Config, logf func(format string, args ...any)) *Fleet {
	cfg = cfg.withDefaults()
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Fleet{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(int64(cfg.Seed))),
		logf:      logf,
		partition: make(map[int]bool),
	}
}

// protocolConfig scales the protocol's preservation timescales to the
// fleet's poll interval, with paper-style fixed quorum independent of the
// population size.
func (f *Fleet) protocolConfig() protocol.Config {
	iv := time.Duration(f.cfg.PollInterval)
	cfg := protocol.DefaultConfig()
	cfg.PollInterval = iv
	cfg.VoteWindow = iv * 7 / 15
	cfg.AckTimeout = iv / 6
	cfg.ProofTimeout = iv / 10
	cfg.VoteSlack = iv / 5
	cfg.ReceiptSlack = iv / 3
	cfg.RepairTimeout = iv * 4 / 15
	cfg.Refractory = iv * 2 / 15
	cfg.GradeDecay = time.Hour
	cfg.FrivolousRepairProb = 0
	cfg.Quorum = f.cfg.Quorum
	cfg.InnerCircle = f.cfg.InnerCircle
	cfg.MaxDisagree = (f.cfg.Quorum - 1) / 2
	if cfg.MaxDisagree < 1 {
		cfg.MaxDisagree = 1
	}
	cfg.OuterCircle = 2
	cfg.Nominations = 3
	target := f.cfg.InnerCircle
	if q2 := 2 * f.cfg.Quorum; q2 > target {
		target = q2
	}
	cfg.RefListTarget = target
	cfg.RefListMax = target + 5
	cfg.ConsiderBurst = 64
	cfg.BlockSize = f.cfg.BlockSize
	return cfg
}

func fleetCosts() effort.CostModel {
	m := effort.DefaultCostModel()
	m.HashBytesPerSec = 64 << 30
	m.SessionSetup = 1e-6
	m.ScheduleCheck = 1e-6
	m.ReceiptCheck = 1e-6
	return m
}

// fleetMBF is demo-scale proof effort: real memory-bound function, sized so
// a hundred provers fit on one machine.
var fleetMBF = effort.MBFParams{TableWords: 1 << 12, Steps: 1 << 10, Checkpoints: 8, VerifySegments: 2, Seed: 7}

func (f *Fleet) auSpec(i int) content.AUSpec {
	return content.AUSpec{
		ID:        content.AUID(i + 1),
		Name:      fmt.Sprintf("journal-%04d", 2000+i),
		Size:      f.cfg.AUSize,
		BlockSize: f.cfg.BlockSize,
	}
}

// buildNode constructs (or reconstructs, on restart) member m's node and
// admin server, stopped at the brink of Start. Durable members reopen their
// store directory and resume its damage state; in-memory members synthesize
// pristine publisher replicas.
func (f *Fleet) buildNode(m *member) error {
	book := make(map[ids.PeerID]string)
	var replicas []content.Replica
	if m.dir != "" {
		st, err := store.Open(m.dir)
		if err != nil {
			return fmt.Errorf("fleet: node %d store: %w", m.id, err)
		}
		if len(st.AUs()) == 0 {
			for i := 0; i < f.cfg.AUs; i++ {
				spec := f.auSpec(i)
				if _, err := st.CreateFrom(spec, m.seed<<16|uint64(spec.ID), content.PublisherReader(spec)); err != nil {
					st.Close()
					return fmt.Errorf("fleet: node %d ingest AU %d: %w", m.id, spec.ID, err)
				}
			}
		}
		m.st = st
		for _, r := range st.Replicas() {
			replicas = append(replicas, r)
		}
	} else {
		m.st = nil
		for i := 0; i < f.cfg.AUs; i++ {
			replicas = append(replicas, content.NewRealReplica(f.auSpec(i), m.seed))
		}
	}
	n, err := node.New(node.Config{
		ID:                m.id,
		Listen:            "127.0.0.1:0",
		AddressBook:       book,
		Protocol:          f.protocolConfig(),
		Costs:             fleetCosts(),
		MBF:               fleetMBF,
		EffortUnit:        0.05,
		Seed:              m.seed,
		SendQueue:         f.cfg.SendQueue,
		MaxInbound:        f.cfg.MaxInbound,
		MaxInboundPerAddr: f.cfg.MaxInboundPerAddr,
		Store:             m.st,
		ScrubPace:         time.Duration(f.cfg.ScrubPace),
		ScrubWorkers:      f.cfg.ScrubWorkers,
		ScrubBandwidth:    f.cfg.ScrubBandwidth,
	})
	if err != nil {
		if m.st != nil {
			m.st.Close()
		}
		return fmt.Errorf("fleet: node %d: %w", m.id, err)
	}
	var refs []ids.PeerID
	for j := 0; j < f.cfg.Nodes; j++ {
		if j != m.idx {
			refs = append(refs, ids.PeerID(j+1))
		}
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i] < refs[j] })
	for _, r := range replicas {
		if err := n.AddAU(r, refs); err != nil {
			return fmt.Errorf("fleet: node %d AddAU: %w", m.id, err)
		}
		for _, p := range refs {
			n.Peer().SeedGrade(r.Spec().ID, p, reputation.Even)
		}
	}
	n.SetFriends(refs)
	m.n = n
	m.adm = admin.New(n, admin.Options{InspectTimeout: 2 * time.Second})
	return nil
}

// startNode boots member m and publishes its fresh ephemeral addresses to
// the rest of the population (respecting any live partition).
func (f *Fleet) startNode(m *member) error {
	if err := m.n.Start(); err != nil {
		return fmt.Errorf("fleet: node %d start: %w", m.id, err)
	}
	if err := m.adm.Start("127.0.0.1:0"); err != nil {
		m.n.Stop()
		return fmt.Errorf("fleet: node %d admin: %w", m.id, err)
	}
	m.protoAddr = m.n.Addr().String()
	m.adminAddr = m.adm.Addr().String()
	m.down = false
	// m learns everyone; everyone learns m.
	for _, o := range f.members {
		if o == m {
			continue
		}
		m.n.SetAddress(o.id, f.addrFor(m, o))
		if !o.down {
			o.n.SetAddress(m.id, f.addrFor(o, m))
		}
	}
	return nil
}

// addrFor is the address viewer sees for target: the real one, or the
// blackhole when the live partition separates them.
func (f *Fleet) addrFor(viewer, target *member) string {
	if f.partition[int(viewer.id)] != f.partition[int(target.id)] {
		return blackhole
	}
	return target.protoAddr
}

// Start boots the whole population and cross-wires the address books.
func (f *Fleet) Start() error {
	f.members = make([]*member, f.cfg.Nodes)
	for i := range f.members {
		m := &member{idx: i, id: ids.PeerID(i + 1), seed: f.cfg.Seed*1_000_003 + uint64(i+1)*7919}
		if f.cfg.DataDir != "" {
			m.dir = filepath.Join(f.cfg.DataDir, fmt.Sprintf("node-%03d", m.id))
			if err := os.MkdirAll(m.dir, 0o755); err != nil {
				return err
			}
		}
		f.members[i] = m
	}
	for _, m := range f.members {
		if err := f.buildNode(m); err != nil {
			f.stopAll()
			return err
		}
	}
	for _, m := range f.members {
		if err := f.startNode(m); err != nil {
			f.stopAll()
			return err
		}
	}
	f.logf("fleet: %d nodes up, %d AUs each", f.cfg.Nodes, f.cfg.AUs)
	return nil
}

func (f *Fleet) stopAll() {
	for _, m := range f.members {
		if m == nil || m.down {
			continue
		}
		if m.stalled != nil {
			close(m.stalled)
			m.stalled = nil
		}
		if m.adm != nil {
			m.adm.Close()
		}
		if m.n != nil {
			m.n.Stop()
		}
	}
}

// apply executes one pinned fault. It returns a short human description of
// what actually happened (for the log and report).
func (f *Fleet) apply(fault Fault) (string, error) {
	switch fault.Kind {
	case "damage":
		m := f.members[fault.Node-1]
		if m.down {
			return "", fmt.Errorf("damage target node %d is down", fault.Node)
		}
		au := content.AUID(fault.AU)
		if m.st != nil {
			// Silent on-disk rot: the scrubber has to find it.
			if err := m.st.InjectDamage(au, fault.Block); err != nil {
				return "", err
			}
			return fmt.Sprintf("silent rot on disk: node %d AU %d block %d", fault.Node, fault.AU, fault.Block), nil
		}
		okc := make(chan bool, 1)
		if !m.n.Inspect(func(p *protocol.Peer) { okc <- p.Replica(au).Damage(fault.Block) }) {
			return "", fmt.Errorf("damage: node %d not inspectable", fault.Node)
		}
		if !<-okc {
			return "", fmt.Errorf("damage: node %d AU %d block %d rejected", fault.Node, fault.AU, fault.Block)
		}
		return fmt.Sprintf("bit rot: node %d AU %d block %d", fault.Node, fault.AU, fault.Block), nil

	case "kill":
		m := f.members[fault.Node-1]
		if m.down {
			return "", fmt.Errorf("kill target node %d already down", fault.Node)
		}
		if m.stalled != nil {
			close(m.stalled)
			m.stalled = nil
		}
		m.adm.Close()
		m.n.Stop() // closes a durable member's store too
		m.down = true
		return fmt.Sprintf("killed node %d", fault.Node), nil

	case "restart":
		m := f.members[fault.Node-1]
		if !m.down {
			return "", fmt.Errorf("restart target node %d is not down", fault.Node)
		}
		if err := f.buildNode(m); err != nil {
			return "", err
		}
		if err := f.startNode(m); err != nil {
			return "", err
		}
		return fmt.Sprintf("restarted node %d on %s", fault.Node, m.protoAddr), nil

	case "stall":
		m := f.members[fault.Node-1]
		if m.down || m.stalled != nil {
			return "", fmt.Errorf("stall target node %d down or already stalled", fault.Node)
		}
		release := make(chan struct{})
		m.stalled = release
		go m.n.Inspect(func(p *protocol.Peer) { <-release })
		return fmt.Sprintf("stalled node %d (actor loop wedged)", fault.Node), nil

	case "unstall":
		m := f.members[fault.Node-1]
		if m.stalled == nil {
			return "", fmt.Errorf("unstall target node %d is not stalled", fault.Node)
		}
		close(m.stalled)
		m.stalled = nil
		return fmt.Sprintf("unstalled node %d", fault.Node), nil

	case "partition":
		f.partition = make(map[int]bool)
		for _, id := range fault.Subnet {
			f.partition[id] = true
		}
		f.rewireAll()
		// Severing live sessions makes the partition bite immediately
		// instead of when the next dial happens.
		for _, m := range f.members {
			if !m.down {
				m.n.DropConnections()
			}
		}
		return fmt.Sprintf("partitioned subnet %v from the rest", fault.Subnet), nil

	case "heal":
		f.partition = make(map[int]bool)
		f.rewireAll()
		return "healed partition", nil
	}
	return "", fmt.Errorf("unknown fault kind %q", fault.Kind)
}

// rewireAll reasserts every pairwise address under the current partition.
func (f *Fleet) rewireAll() {
	for _, m := range f.members {
		if m.down {
			continue
		}
		for _, o := range f.members {
			if o != m {
				m.n.SetAddress(o.id, f.addrFor(m, o))
			}
		}
	}
}

// Run operates the fleet end to end: boot, drive the fault schedule, scrape
// on the interval, shut down, and return the report. The context cancels
// the run early (the report covers what ran).
func (f *Fleet) Run(ctx context.Context) (*Report, error) {
	if err := f.Start(); err != nil {
		return nil, err
	}
	defer f.stopAll()

	plan := f.cfg.schedule(f.rng)
	rep := &Report{
		Nodes:  f.cfg.Nodes,
		AUs:    f.cfg.AUs,
		Seed:   f.cfg.Seed,
		Config: f.cfg,
	}
	start := time.Now()
	next := 0
	scrape := time.NewTicker(time.Duration(f.cfg.ScrapeInterval))
	defer scrape.Stop()
	end := time.NewTimer(time.Duration(f.cfg.Duration))
	defer end.Stop()
	sampleCh := make(chan Sample, 4)
	var scraping atomic.Bool

	fire := func() {
		for next < len(plan) && time.Since(start) >= time.Duration(plan[next].At) {
			fl := plan[next]
			next++
			desc, err := f.apply(fl)
			ev := FaultEvent{At: Duration(time.Since(start)), Fault: fl}
			if err != nil {
				ev.Error = err.Error()
				f.logf("fleet: fault %s FAILED: %v", fl.Kind, err)
			} else {
				ev.Desc = desc
				f.logf("fleet: %s", desc)
			}
			rep.FaultLog = append(rep.FaultLog, ev)
		}
	}
	// armed returns a channel firing when the next unapplied fault is due.
	var faultTimer *time.Timer
	arm := func() <-chan time.Time {
		if next >= len(plan) {
			return nil
		}
		d := time.Until(start.Add(time.Duration(plan[next].At)))
		if d < 0 {
			d = 0
		}
		if faultTimer == nil {
			faultTimer = time.NewTimer(d)
		} else {
			faultTimer.Reset(d)
		}
		return faultTimer.C
	}
	defer func() {
		if faultTimer != nil {
			faultTimer.Stop()
		}
	}()

loop:
	for {
		select {
		case <-ctx.Done():
			break loop
		case <-end.C:
			break loop
		case <-arm():
			fire()
		case smp := <-sampleCh:
			rep.Samples = append(rep.Samples, smp)
		case <-scrape.C:
			// Scrapes run off the loop so a wedged node's timeouts can
			// never delay the fault schedule; member state is snapshotted
			// here (the loop owns it) and handed to the worker. A sweep
			// still in flight skips the tick rather than piling up.
			if scraping.CompareAndSwap(false, true) {
				at := time.Since(start)
				targets := f.scrapeTargets()
				go func() {
					defer scraping.Store(false)
					sampleCh <- sampleTargets(Duration(at), targets)
				}()
			}
		}
	}

	// Collect the in-flight sweep, then one final synchronous sweep while
	// everything still runs, then authoritative on-disk verification after
	// shutdown for durable fleets.
	for scraping.Load() {
		select {
		case smp := <-sampleCh:
			rep.Samples = append(rep.Samples, smp)
		case <-time.After(20 * time.Millisecond):
		}
	}
	for {
		select {
		case smp := <-sampleCh:
			rep.Samples = append(rep.Samples, smp)
			continue
		default:
		}
		break
	}
	sort.SliceStable(rep.Samples, func(i, j int) bool { return rep.Samples[i].At < rep.Samples[j].At })
	final := sampleTargets(Duration(time.Since(start)), f.scrapeTargets())
	rep.Samples = append(rep.Samples, final)
	rep.Final = f.finalReport(final)
	// Flight-recorder sweep: histograms and poll spans only exist in-process,
	// so they must be pulled before the nodes go away.
	rep.Telemetry = collectTelemetry(f.scrapeTargets())
	f.stopAll()
	if f.cfg.DataDir != "" {
		unrepaired, err := f.verifyStores()
		if err != nil {
			return rep, err
		}
		rep.Final.UnrepairedDamage = unrepaired
		rep.Final.Converged = unrepaired == 0
	}
	rep.Elapsed = Duration(time.Since(start))
	return rep, nil
}

// scrapeTarget is the loop's snapshot of one member for a scrape worker.
type scrapeTarget struct {
	id        int
	down      bool
	adminAddr string
}

func (f *Fleet) scrapeTargets() []scrapeTarget {
	out := make([]scrapeTarget, len(f.members))
	for i, m := range f.members {
		out[i] = scrapeTarget{id: int(m.id), down: m.down, adminAddr: m.adminAddr}
	}
	return out
}

// sampleTargets scrapes every target's admin endpoints concurrently and
// aggregates. It touches no fleet state.
func sampleTargets(at Duration, targets []scrapeTarget) Sample {
	s := Sample{At: at, Aggregate: newSampleAggregate(), PerNode: make([]NodeSample, len(targets))}
	var wg sync.WaitGroup
	for i, tgt := range targets {
		ns := &s.PerNode[i]
		ns.Node = tgt.id
		if tgt.down {
			ns.Down = true
			continue
		}
		addr := tgt.adminAddr
		wg.Add(1)
		go func() {
			defer wg.Done()
			ns.Metrics, ns.MetricsErr = scrapeMetrics(addr)
			ns.Healthy = scrapeHealthz(addr)
			ns.Damage, ns.ActivePolls = damageFromMetrics(ns.Metrics)
		}()
	}
	wg.Wait()
	for i := range s.PerNode {
		ns := &s.PerNode[i]
		if ns.Down {
			s.NodesDown++
			continue
		}
		s.NodesUp++
		if ns.Healthy {
			s.NodesHealthy++
		}
		s.DamagedBlocks += float64(ns.Damage)
		for _, k := range aggregateKeys {
			s.Aggregate[k.field] += ns.Metrics[k.metric]
		}
	}
	return s
}

// finalReport condenses the last sample into the verdict the CI gate reads.
func (f *Fleet) finalReport(final Sample) Final {
	fin := Final{
		NodesUp:          final.NodesUp,
		NodesHealthy:     final.NodesHealthy,
		UnrepairedDamage: int(final.DamagedBlocks),
		AllHealthy:       final.NodesHealthy == f.cfg.Nodes,
	}
	fin.Converged = fin.UnrepairedDamage == 0
	for i := range final.PerNode {
		ns := final.PerNode[i]
		fin.PerNode = append(fin.PerNode, ns)
	}
	return fin
}

// verifyStores re-opens every durable store after shutdown and counts
// blocks that fail manifest verification — ground truth that catches silent
// rot no scrubber pass had reached yet.
func (f *Fleet) verifyStores() (int, error) {
	unrepaired := 0
	for _, m := range f.members {
		if m.dir == "" || m.down {
			continue
		}
		st, err := store.Open(m.dir)
		if err != nil {
			return 0, fmt.Errorf("fleet: verify node %d: %w", m.id, err)
		}
		dam := st.VerifyAll()
		st.Close()
		unrepaired += len(dam)
	}
	return unrepaired, nil
}
