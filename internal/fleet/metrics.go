package fleet

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// scrapeClient bounds every admin scrape so one wedged node cannot stall
// the sweep past its interval.
var scrapeClient = &http.Client{Timeout: 5 * time.Second}

// scrapeMetrics fetches and parses one node's Prometheus-text /metrics.
func scrapeMetrics(adminAddr string) (map[string]float64, string) {
	resp, err := scrapeClient.Get("http://" + adminAddr + "/metrics")
	if err != nil {
		return nil, err.Error()
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err.Error()
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Sprintf("status %d", resp.StatusCode)
	}
	m, err := parseMetrics(string(body))
	if err != nil {
		return nil, err.Error()
	}
	return m, ""
}

// parseMetrics reads Prometheus text exposition into name -> value.
func parseMetrics(text string) (map[string]float64, error) {
	out := make(map[string]float64)
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("malformed metrics line %q", line)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("bad value in %q: %w", line, err)
		}
		out[fields[0]] = v
	}
	return out, nil
}

// scrapeHealthz reports whether the node's /healthz answered 200.
func scrapeHealthz(adminAddr string) bool {
	resp, err := scrapeClient.Get("http://" + adminAddr + "/healthz")
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}

// damageFromMetrics extracts the marked-damage and active-poll gauges (zero
// when the node's actor loop was unresponsive and the gauges were absent).
func damageFromMetrics(m map[string]float64) (damage int, polls int) {
	return int(m["lockss_au_damaged_blocks"]), int(m["lockss_active_polls"])
}
