package session

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

// pipePair establishes a session over an in-memory duplex pipe.
func pipePair(t *testing.T) (*Conn, *Conn) {
	t.Helper()
	a, b := net.Pipe()
	type res struct {
		c   *Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := Server(b)
		ch <- res{c, err}
	}()
	client, err := Client(a)
	if err != nil {
		t.Fatalf("client handshake: %v", err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatalf("server handshake: %v", r.err)
	}
	return client, r.c
}

func TestRoundTrip(t *testing.T) {
	c, s := pipePair(t)
	defer c.Close()
	defer s.Close()

	msgs := [][]byte{
		[]byte("hello"),
		{},
		bytes.Repeat([]byte{0xAB}, 100000),
	}
	done := make(chan error, 1)
	go func() {
		for _, m := range msgs {
			if err := c.WriteMsg(m); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i, want := range msgs {
		got, err := s.ReadMsg()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("message %d corrupted: %d vs %d bytes", i, len(got), len(want))
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestBidirectional(t *testing.T) {
	c, s := pipePair(t)
	defer c.Close()
	defer s.Close()
	go func() {
		c.WriteMsg([]byte("ping"))
	}()
	if m, err := s.ReadMsg(); err != nil || string(m) != "ping" {
		t.Fatalf("server read: %v %q", err, m)
	}
	go func() {
		s.WriteMsg([]byte("pong"))
	}()
	if m, err := c.ReadMsg(); err != nil || string(m) != "pong" {
		t.Fatalf("client read: %v %q", err, m)
	}
}

func TestConfidentiality(t *testing.T) {
	// The ciphertext over the raw transport must not contain the plaintext.
	a, b := net.Pipe()
	captured := &capturingConn{Conn: a}
	ch := make(chan *Conn, 1)
	go func() {
		s, err := Server(b)
		if err != nil {
			ch <- nil
			return
		}
		ch <- s
	}()
	client, err := Client(captured)
	if err != nil {
		t.Fatal(err)
	}
	server := <-ch
	if server == nil {
		t.Fatal("server handshake failed")
	}
	secret := []byte("extremely secret archival unit content")
	go client.WriteMsg(secret)
	if _, err := server.ReadMsg(); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(captured.out.Bytes(), secret) {
		t.Error("plaintext visible on the wire")
	}
}

type capturingConn struct {
	net.Conn
	out bytes.Buffer
}

func (c *capturingConn) Write(p []byte) (int, error) {
	c.out.Write(p)
	return c.Conn.Write(p)
}

func TestTamperDetected(t *testing.T) {
	a, b := net.Pipe()
	flip := &flippingConn{Conn: a}
	ch := make(chan *Conn, 1)
	go func() {
		s, _ := Server(b)
		ch <- s
	}()
	client, err := Client(flip)
	if err != nil {
		t.Fatal(err)
	}
	server := <-ch
	if server == nil {
		t.Fatal("handshake failed")
	}
	flip.arm = true // start flipping bits after the handshake
	go client.WriteMsg([]byte("message"))
	if _, err := server.ReadMsg(); err == nil {
		t.Error("tampered frame accepted")
	}
}

type flippingConn struct {
	net.Conn
	arm bool
}

func (c *flippingConn) Write(p []byte) (int, error) {
	if c.arm && len(p) > 4 {
		q := make([]byte, len(p))
		copy(q, p)
		q[len(q)-1] ^= 0x01
		return c.Conn.Write(q)
	}
	return c.Conn.Write(p)
}

func TestOversizedFrameRejected(t *testing.T) {
	c, s := pipePair(t)
	defer c.Close()
	defer s.Close()
	err := c.WriteMsg(make([]byte, MaxFrame+1))
	if err == nil {
		t.Error("oversized write accepted")
	}
}

func TestDistinctSessionsDistinctKeys(t *testing.T) {
	c1, s1 := pipePair(t)
	defer c1.Close()
	defer s1.Close()
	c2, s2 := pipePair(t)
	defer c2.Close()
	defer s2.Close()
	// A frame from session 1 replayed into session 2 must not decrypt:
	// simulate by capturing sealed output size only; directly exercising
	// cross-session replay needs shared framing, so check key separation
	// via differing ciphertexts for identical plaintexts.
	a, b := net.Pipe()
	cap1 := &capturingConn{Conn: a}
	go func() { Server(b) }()
	Client(cap1)
	// Two sessions generate independent ephemeral keys with overwhelming
	// probability; equal handshake transcripts would be alarming.
	if cap1.out.Len() == 0 {
		t.Skip("no handshake bytes captured")
	}
}

// TestConcurrentWriters proves WriteMsg's internal locking keeps the GCM
// nonce sequence aligned with the byte stream when several goroutines share
// one Conn (the per-peer writer plus any future control-plane sender). Run
// with -race.
func TestConcurrentWriters(t *testing.T) {
	c, s := pipePair(t)
	defer c.Close()
	defer s.Close()

	const writers, perWriter = 4, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				msg := fmt.Sprintf("writer-%d-msg-%d", w, i)
				if err := c.WriteMsg([]byte(msg)); err != nil {
					t.Errorf("write %s: %v", msg, err)
					return
				}
			}
		}(w)
	}
	got := make(map[string]bool, writers*perWriter)
	for i := 0; i < writers*perWriter; i++ {
		m, err := s.ReadMsg()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		got[string(m)] = true
	}
	wg.Wait()
	if len(got) != writers*perWriter {
		t.Fatalf("received %d distinct messages, want %d", len(got), writers*perWriter)
	}
}

// TestWriteTimeout: a peer that completes the handshake and then never reads
// (pipe stoppage) must not hold WriteMsg hostage once a write timeout is set.
func TestWriteTimeout(t *testing.T) {
	c, s := pipePair(t)
	defer c.Close()
	defer s.Close()

	c.SetWriteTimeout(50 * time.Millisecond)
	// net.Pipe is unbuffered: with no reader on s, the first write blocks
	// until the deadline trips.
	start := time.Now()
	err := c.WriteMsg([]byte("into the void"))
	if err == nil {
		t.Fatal("write to a stalled peer succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("write timeout took %v, want ~50ms", elapsed)
	}
}
