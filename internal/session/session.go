// Package session provides the encrypted peer-to-peer transport session for
// the real LOCKSS node: an anonymous Diffie-Hellman key exchange (X25519)
// followed by AES-GCM framing, mirroring the paper's "encrypted TLS session
// ... via an anonymous Diffie-Hellman key exchange". No long-term secrets or
// certificate infrastructure are required — by design, the system avoids
// relying on secrets that must stay safe for decades; peer identity is
// ostensible and the protocol's defenses do not depend on it.
package session

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// MaxFrame bounds the size of a single message frame.
const MaxFrame = 96 << 20

// Conn is an established encrypted session over a reliable byte stream.
//
// WriteMsg is safe for concurrent use: a write mutex serializes the nonce
// counter, the seal, and the two stream writes, so interleaved callers can
// never desynchronize the GCM nonce sequence from the byte stream. ReadMsg
// must still be called from a single goroutine (one reader owns the inbound
// half).
type Conn struct {
	raw     net.Conn
	send    cipher.AEAD
	recv    cipher.AEAD
	sendCtr uint64
	recvCtr uint64

	// wmu guards sendCtr, writeTimeout and the framing writes.
	wmu          sync.Mutex
	writeTimeout time.Duration

	// readIdle, when set, bounds how long ReadMsg waits for the next
	// frame. Set it before the first ReadMsg (it is read without a lock by
	// the reader goroutine).
	readIdle time.Duration
}

// deriveAEAD builds an AES-256-GCM AEAD from the shared secret and a
// direction label.
func deriveAEAD(shared []byte, label string) (cipher.AEAD, error) {
	h := sha256.New()
	h.Write([]byte("lockss/session/v1/"))
	h.Write([]byte(label))
	h.Write(shared)
	block, err := aes.NewCipher(h.Sum(nil))
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}

// handshake runs the anonymous X25519 exchange. The initiator's key travels
// first; directional keys are derived from the shared secret.
func handshake(raw net.Conn, initiator bool) (*Conn, error) {
	key, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("session: keygen: %w", err)
	}
	mine := key.PublicKey().Bytes()
	theirs := make([]byte, len(mine))
	if initiator {
		if _, err := raw.Write(mine); err != nil {
			return nil, fmt.Errorf("session: send key: %w", err)
		}
		if _, err := io.ReadFull(raw, theirs); err != nil {
			return nil, fmt.Errorf("session: recv key: %w", err)
		}
	} else {
		if _, err := io.ReadFull(raw, theirs); err != nil {
			return nil, fmt.Errorf("session: recv key: %w", err)
		}
		if _, err := raw.Write(mine); err != nil {
			return nil, fmt.Errorf("session: send key: %w", err)
		}
	}
	peerKey, err := ecdh.X25519().NewPublicKey(theirs)
	if err != nil {
		return nil, fmt.Errorf("session: peer key: %w", err)
	}
	shared, err := key.ECDH(peerKey)
	if err != nil {
		return nil, fmt.Errorf("session: ecdh: %w", err)
	}
	c2s, err := deriveAEAD(shared, "c2s")
	if err != nil {
		return nil, err
	}
	s2c, err := deriveAEAD(shared, "s2c")
	if err != nil {
		return nil, err
	}
	c := &Conn{raw: raw}
	if initiator {
		c.send, c.recv = c2s, s2c
	} else {
		c.send, c.recv = s2c, c2s
	}
	return c, nil
}

// Client establishes a session as the initiating side.
func Client(raw net.Conn) (*Conn, error) { return handshake(raw, true) }

// Server establishes a session as the accepting side.
func Server(raw net.Conn) (*Conn, error) { return handshake(raw, false) }

// nonce derives the 12-byte GCM nonce from a direction counter. Counters
// never repeat within a session, which is all GCM requires.
func nonce(ctr uint64) []byte {
	var n [12]byte
	binary.BigEndian.PutUint64(n[4:], ctr)
	return n[:]
}

// SetWriteTimeout bounds every subsequent WriteMsg: a frame that cannot be
// flushed within d (a remote that stopped reading, with full TCP buffers —
// the paper's pipe-stoppage adversary) fails instead of blocking the writer
// forever. Zero disables the bound.
func (c *Conn) SetWriteTimeout(d time.Duration) {
	c.wmu.Lock()
	c.writeTimeout = d
	c.wmu.Unlock()
}

// WriteMsg encrypts and frames one message. Safe for concurrent use. An
// error means the session is dead — the nonce counter may have advanced past
// a partially written frame — and the Conn must be closed, not retried.
func (c *Conn) WriteMsg(plaintext []byte) error {
	if len(plaintext) > MaxFrame {
		return fmt.Errorf("session: frame of %d bytes exceeds limit", len(plaintext))
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.writeTimeout > 0 {
		c.raw.SetWriteDeadline(time.Now().Add(c.writeTimeout))
	} else {
		c.raw.SetWriteDeadline(time.Time{}) // clear any previously armed bound
	}
	sealed := c.send.Seal(nil, nonce(c.sendCtr), plaintext, nil)
	c.sendCtr++
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(sealed)))
	if _, err := c.raw.Write(hdr[:]); err != nil {
		return err
	}
	_, err := c.raw.Write(sealed)
	return err
}

// SetReadIdleTimeout bounds how long each subsequent ReadMsg waits for a
// frame, so an established session that goes silent can be reaped instead
// of holding resources forever. Must be called before the first ReadMsg;
// zero (the default) disables the bound.
func (c *Conn) SetReadIdleTimeout(d time.Duration) { c.readIdle = d }

// ReadMsg reads and decrypts one message. It must be called from a single
// goroutine.
func (c *Conn) ReadMsg() ([]byte, error) {
	if c.readIdle > 0 {
		c.raw.SetReadDeadline(time.Now().Add(c.readIdle))
	}
	var hdr [4]byte
	if _, err := io.ReadFull(c.raw, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, errors.New("session: oversized frame")
	}
	sealed := make([]byte, n)
	if _, err := io.ReadFull(c.raw, sealed); err != nil {
		return nil, err
	}
	plain, err := c.recv.Open(nil, nonce(c.recvCtr), sealed, nil)
	if err != nil {
		return nil, fmt.Errorf("session: decrypt: %w", err)
	}
	c.recvCtr++
	return plain, nil
}

// Close closes the underlying transport.
func (c *Conn) Close() error { return c.raw.Close() }
