// Command lockss-fleet operates a population of in-process LOCKSS nodes on
// one machine from a declarative config: it boots N nodes on loopback,
// drives a scheduled fault plan (damage injection, kill/restart, stalled
// peers, partitions, steady churn) with a seeded PRNG, scrapes every node's
// admin /metrics and /healthz on an interval, and writes one JSON report of
// the run plus a human summary table.
//
// Before shutdown the harness sweeps every node's flight recorder: per-node
// latency histograms are merged into fleet-wide p50/p95/p99 tables (poll
// duration, solicitation→vote latency, tally/repair time, transport queue
// wait, scrub pass time, admin latency), and each initiator's poll span is
// joined — by poll ID — with the votes other nodes supplied to it, giving a
// cross-node poll timeline. Both appear under "telemetry" in the JSON report
// and as a latency table in the summary.
//
//	lockss-fleet -config examples/fleet/attrition-small.json -o report.json -check
//
// The config is JSON with //-comment lines; see examples/fleet/ and
// docs/ARCHITECTURE.md ("Control plane & fleet") for the schema. -check
// turns the run into a gate: exit 0 only when the final report shows zero
// unrepaired damage and every node's /healthz green — how CI asserts a
// 25-node population heals scheduled damage through a kill/restart.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lockss/internal/fleet"
)

func main() {
	var (
		cfgPath  = flag.String("config", "", "fleet config file (JSON with //-comments; required)")
		out      = flag.String("o", "fleet-report.json", "write the JSON fleet report here (\"-\" = stdout)")
		check    = flag.Bool("check", false, "exit non-zero unless the run converged (zero unrepaired damage) with every node healthy")
		duration = flag.Duration("duration", 0, "override the config's run duration")
		verbose  = flag.Bool("v", false, "log every fault and supervision event")
	)
	flag.Parse()
	log.SetPrefix("lockss-fleet ")
	log.SetFlags(log.Ltime | log.Lmicroseconds)

	if *cfgPath == "" {
		fmt.Fprintln(os.Stderr, "lockss-fleet: -config is required")
		os.Exit(2)
	}
	cfg, err := fleet.LoadConfig(*cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lockss-fleet: %v\n", err)
		os.Exit(2)
	}
	if *duration > 0 {
		cfg.Duration = fleet.Duration(*duration)
	}

	logf := func(string, ...any) {}
	if *verbose {
		logf = log.Printf
	}

	// Signals cancel the run; the report covers what ran.
	ctx, cancel := context.WithCancel(context.Background())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Printf("interrupted; finishing the run early")
		cancel()
	}()

	log.Printf("running %d nodes for %v (seed %d, %d faults scheduled)",
		cfg.Nodes, time.Duration(cfg.Duration), cfg.Seed, len(cfg.Faults))
	f := fleet.New(cfg, logf)
	rep, err := f.Run(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lockss-fleet: %v\n", err)
		os.Exit(1)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "lockss-fleet: encode report: %v\n", err)
		os.Exit(1)
	}
	if *out == "-" {
		os.Stdout.Write(append(data, '\n'))
	} else if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "lockss-fleet: write report: %v\n", err)
		os.Exit(1)
	} else {
		log.Printf("report written to %s", *out)
	}

	fmt.Print(rep.Summary())

	if *check && (!rep.Final.Converged || !rep.Final.AllHealthy) {
		fmt.Fprintf(os.Stderr, "lockss-fleet: CHECK FAILED: converged=%v all_healthy=%v unrepaired=%d\n",
			rep.Final.Converged, rep.Final.AllHealthy, rep.Final.UnrepairedDamage)
		os.Exit(1)
	}
}
