// Command lockss-replay re-executes a trace recorded by lockss-node -record
// and diffs the replayed protocol behavior against the recording.
//
// The trace captures everything that drove one node's protocol state machine
// — decoded inbound frames, timer firings, scrub-detected damage, plus the
// peer's bootstrap state and randomness seed in the header — so the replay
// rebuilds the peer offline and feeds it the same inputs in the same order.
// The peer's observable outputs (messages sent, poll outcomes, repairs,
// alarms) are then compared element-wise against the recorded ones:
//
//	lockss-node -id 1 ... -record /tmp/n1.trace.jsonl
//	lockss-replay /tmp/n1.trace.jsonl
//
// The report is deterministic: replaying the same trace twice produces
// byte-identical output. Exit status: 0 = replay matches the recording,
// 1 = behavioral divergence, 2 = unusable trace or usage error.
package main

import (
	"flag"
	"fmt"
	"os"

	"lockss/internal/trace"
)

func main() {
	quiet := flag.Bool("q", false, "suppress the per-event output log; print only the verdict")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: lockss-replay [-q] trace.jsonl\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	t, err := trace.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "lockss-replay: %v\n", err)
		os.Exit(2)
	}
	res, err := trace.Replay(t)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lockss-replay: %v\n", err)
		os.Exit(2)
	}

	report := res.Report()
	if *quiet {
		// The verdict is the report's last line.
		fmt.Printf("replayed %d input events; %d recorded outputs, %d replayed outputs\n",
			res.Inputs, len(res.Recorded), len(res.Replayed))
		for _, d := range res.Divergences {
			fmt.Printf("divergence: %s\n", d)
		}
		if res.Diverged() {
			fmt.Printf("verdict: DIVERGED (%d)\n", len(res.Divergences))
		} else {
			fmt.Println("verdict: MATCH")
		}
	} else {
		fmt.Print(report)
	}
	if res.Diverged() {
		os.Exit(1)
	}
}
