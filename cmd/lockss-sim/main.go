// Command lockss-sim regenerates the evaluation figures and tables of
// "Attrition Defenses for a Peer-to-Peer Digital Preservation System"
// (USENIX 2005) from the simulator in this repository, and runs any
// scenario registered with the declarative scenario API.
//
// Usage:
//
//	lockss-sim -list                     # list registered scenarios
//	lockss-sim -figure 2                 # one artifact: 2..8, table1, ablations
//	lockss-sim -figure all               # everything
//	lockss-sim -scenario figure2,table1  # run scenarios by registry name
//	lockss-sim -output json              # text | json | csv
//	lockss-sim -scale paper              # tiny | small | paper | large | huge
//	lockss-sim -workers 8                # parallel runs (default: all cores)
//	lockss-sim -shards 4                 # parallel peer shards per run
//	lockss-sim -progress                 # periodic virtual-time progress lines
//	lockss-sim -seeds 3 -seed 42 -v
//
// -workers parallelizes across independent runs; -shards parallelizes inside
// each run, which is what helps at -scale large/huge where a single run
// dominates.
//
// Output is bit-identical at any -workers value: runs are scheduled across
// the worker pool but seeded, combined and printed exactly as the serial
// path would. SIGINT/SIGTERM cancel the run: queued simulations are skipped
// and the command exits promptly.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"lockss/internal/experiment"
	"lockss/internal/sim"
)

// selection pairs a registry name with the table index the legacy -figure
// spellings select; -1 selects all of the scenario's tables.
type selection struct {
	scenario string
	table    int
}

func selections(figure string) ([]selection, error) {
	all := []selection{
		{"figure2", -1},
		{"figures-pipe-stoppage", -1},
		{"figures-admission-flood", -1},
		{"table1", -1},
		{"ablation-refractory", -1},
		{"ablation-drop-prob", -1},
		{"ablation-introductions", -1},
		{"ablation-desynchronization", -1},
		{"ablation-effort-balancing", -1},
		{"extension-churn", -1},
		{"extension-adaptive", -1},
		{"extension-combined", -1},
	}
	switch figure {
	case "all":
		return all, nil
	case "2":
		return []selection{{"figure2", -1}}, nil
	case "3", "4", "5":
		return []selection{{"figures-pipe-stoppage", int(figure[0] - '3')}}, nil
	case "6", "7", "8":
		return []selection{{"figures-admission-flood", int(figure[0] - '6')}}, nil
	case "table1":
		return []selection{{"table1", -1}}, nil
	case "ablations":
		return all[4:9], nil
	case "extensions":
		return all[9:12], nil
	}
	return nil, fmt.Errorf("unknown figure %q", figure)
}

// emitter writes tables in the selected output format.
func emitter(format string) (func(t *experiment.Table) error, error) {
	switch format {
	case "text":
		return func(t *experiment.Table) error { t.Fprint(os.Stdout); return nil }, nil
	case "json":
		// One JSON object per table (JSON Lines).
		return func(t *experiment.Table) error { return t.WriteJSON(os.Stdout) }, nil
	case "csv":
		// Tables are separated by a "# id: title" comment line and a blank
		// line, so a multi-table run stays splittable.
		return func(t *experiment.Table) error {
			fmt.Printf("# %s: %s\n", t.ID, t.Title)
			if err := t.WriteCSV(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
			return nil
		}, nil
	}
	return nil, fmt.Errorf("unknown output format %q", format)
}

func main() {
	var (
		figure   = flag.String("figure", "", "legacy artifact selector: 2,3,4,5,6,7,8,table1,ablations,extensions,all")
		scenario = flag.String("scenario", "", "comma-separated registered scenario names to run (see -list)")
		list     = flag.Bool("list", false, "list registered scenarios and exit")
		output   = flag.String("output", "text", "output format: text, json, csv")
		scale    = flag.String("scale", "small", "experiment fidelity: tiny, small, paper, large, huge")
		seeds    = flag.Int("seeds", 0, "seeds per data point (0 = scale default)")
		seed     = flag.Uint64("seed", 0, "base seed offset")
		workers  = flag.Int("workers", 0, "concurrent simulation runs (<=0 = GOMAXPROCS, i.e. all usable cores)")
		shards   = flag.Int("shards", 0, "parallel peer shards per simulation (0/1 = single engine; output is byte-identical at any value)")
		progress = flag.Bool("progress", false, "print periodic virtual-time/events-executed progress lines to stderr")
		verbose  = flag.Bool("v", false, "print per-data-point progress")
		cpuprof  = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprof  = flag.String("memprofile", "", "write an allocation profile at exit to this file")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "lockss-sim: %v\n", err)
		os.Exit(1)
	}

	// Profiling hooks, so perf work can profile real figure runs instead of
	// reduced benchmark stand-ins. Inspect with `go tool pprof`.
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprof != "" {
		f, err := os.Create(*memprof)
		if err != nil {
			fail(err)
		}
		defer func() {
			runtime.GC() // settle live objects so the heap profile is current
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "lockss-sim: writing memory profile: %v\n", err)
			}
			f.Close()
		}()
	}

	if *list {
		for _, s := range experiment.List() {
			fmt.Printf("%-28s %s\n", s.Name, s.Description)
		}
		return
	}

	// One engine for the whole invocation: running several scenarios reuses
	// memoized baseline runs across them.
	eng := experiment.NewEngine(*workers)
	opts := experiment.Options{Seeds: *seeds, BaseSeed: *seed, Shards: *shards, Engine: eng}
	switch strings.ToLower(*scale) {
	case "tiny":
		opts.Scale = experiment.ScaleTiny
	case "small":
		opts.Scale = experiment.ScaleSmall
	case "paper":
		opts.Scale = experiment.ScalePaper
	case "large":
		opts.Scale = experiment.ScaleLarge
	case "huge":
		opts.Scale = experiment.ScaleHuge
	default:
		fmt.Fprintf(os.Stderr, "lockss-sim: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *progress {
		// Rate-limited one-liners: virtual time reached and events executed
		// by the reporting run. Concurrent runs interleave; each line stands
		// alone.
		var lastPrint atomic.Int64
		experiment.ProgressSink = func(vt sim.Time, events uint64) {
			now := time.Now().UnixNano()
			last := lastPrint.Load()
			if now-last < 2*int64(time.Second) || !lastPrint.CompareAndSwap(last, now) {
				return
			}
			fmt.Fprintf(os.Stderr, "progress: vt=%.1fd events=%dM\n",
				float64(vt)/float64(sim.Day), events>>20)
		}
	}
	if *verbose {
		start := time.Now()
		opts.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "[%7.1fs] %s\n", time.Since(start).Seconds(), fmt.Sprintf(format, args...))
		}
	}

	emit, err := emitter(strings.ToLower(*output))
	if err != nil {
		fail(err)
	}

	// Resolve what to run: explicit -scenario names win; -figure (default
	// "all" when neither flag is given) maps onto the same registry.
	var sels []selection
	switch {
	case *scenario != "" && *figure != "":
		fail(fmt.Errorf("-scenario and -figure are mutually exclusive"))
	case *scenario != "":
		for _, name := range strings.Split(*scenario, ",") {
			sels = append(sels, selection{strings.TrimSpace(name), -1})
		}
	default:
		f := strings.ToLower(*figure)
		if f == "" {
			f = "all"
		}
		sels, err = selections(f)
		if err != nil {
			fail(err)
		}
	}

	// SIGINT/SIGTERM cancel the run; queued simulations are skipped.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	for _, sel := range sels {
		spec, ok := experiment.Lookup(sel.scenario)
		if !ok {
			fail(fmt.Errorf("scenario %q not registered (try -list)", sel.scenario))
		}
		tables, err := spec.Run(ctx, opts)
		if err != nil {
			fail(err)
		}
		if sel.table >= 0 {
			tables = tables[sel.table : sel.table+1]
		}
		for _, t := range tables {
			if err := emit(t); err != nil {
				fail(err)
			}
		}
	}

	if *verbose {
		hits, misses := eng.MemoStats()
		fmt.Fprintf(os.Stderr, "engine: %d workers; baseline runs computed=%d memo-hits=%d\n",
			eng.Workers(), misses, hits)
	}
}
