// Command lockss-sim regenerates the evaluation figures and tables of
// "Attrition Defenses for a Peer-to-Peer Digital Preservation System"
// (USENIX 2005) from the simulator in this repository.
//
// Usage:
//
//	lockss-sim -figure 2            # one figure: 2..8, table1, ablations
//	lockss-sim -figure all          # everything
//	lockss-sim -scale paper         # tiny | small | paper
//	lockss-sim -workers 8           # parallel runs (default: all cores)
//	lockss-sim -seeds 3 -seed 42 -v
//
// Output is bit-identical at any -workers value: runs are scheduled across
// the worker pool but seeded, combined and printed exactly as the serial
// path would.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"lockss/internal/experiment"
)

func main() {
	var (
		figure  = flag.String("figure", "all", "which artifact to regenerate: 2,3,4,5,6,7,8,table1,ablations,extensions,all")
		scale   = flag.String("scale", "small", "experiment fidelity: tiny, small, paper")
		seeds   = flag.Int("seeds", 0, "seeds per data point (0 = scale default)")
		seed    = flag.Uint64("seed", 0, "base seed offset")
		workers = flag.Int("workers", 0, "concurrent simulation runs (<=0 = GOMAXPROCS, i.e. all usable cores)")
		verbose = flag.Bool("v", false, "print per-data-point progress")
	)
	flag.Parse()

	// One engine for the whole invocation: -figure all reuses memoized
	// baseline runs across figures.
	eng := experiment.NewEngine(*workers)
	opts := experiment.Options{Seeds: *seeds, BaseSeed: *seed, Engine: eng}
	switch strings.ToLower(*scale) {
	case "tiny":
		opts.Scale = experiment.ScaleTiny
	case "small":
		opts.Scale = experiment.ScaleSmall
	case "paper":
		opts.Scale = experiment.ScalePaper
	default:
		fmt.Fprintf(os.Stderr, "lockss-sim: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *verbose {
		start := time.Now()
		opts.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "[%7.1fs] %s\n", time.Since(start).Seconds(), fmt.Sprintf(format, args...))
		}
	}

	emit := func(tables ...*experiment.Table) {
		for _, t := range tables {
			t.Fprint(os.Stdout)
		}
	}
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "lockss-sim: %v\n", err)
		os.Exit(1)
	}

	want := func(name string) bool {
		f := strings.ToLower(*figure)
		return f == "all" || f == name
	}

	if want("2") {
		t, err := experiment.Figure2(opts)
		if err != nil {
			fail(err)
		}
		emit(t)
	}
	if want("3") || want("4") || want("5") {
		ts, err := experiment.FiguresPipeStoppage(opts)
		if err != nil {
			fail(err)
		}
		if strings.ToLower(*figure) == "all" {
			emit(ts...)
		} else {
			idx := map[string]int{"3": 0, "4": 1, "5": 2}[strings.ToLower(*figure)]
			emit(ts[idx])
		}
	}
	if want("6") || want("7") || want("8") {
		ts, err := experiment.FiguresAdmissionFlood(opts)
		if err != nil {
			fail(err)
		}
		if strings.ToLower(*figure) == "all" {
			emit(ts...)
		} else {
			idx := map[string]int{"6": 0, "7": 1, "8": 2}[strings.ToLower(*figure)]
			emit(ts[idx])
		}
	}
	if want("table1") {
		t, err := experiment.Table1(opts)
		if err != nil {
			fail(err)
		}
		emit(t)
	}
	if want("ablations") {
		for _, gen := range []func(experiment.Options) (*experiment.Table, error){
			experiment.AblationRefractory,
			experiment.AblationDropProb,
			experiment.AblationIntroductions,
			experiment.AblationDesynchronization,
			experiment.AblationEffortBalancing,
		} {
			t, err := gen(opts)
			if err != nil {
				fail(err)
			}
			emit(t)
		}
	}
	if want("extensions") {
		for _, gen := range []func(experiment.Options) (*experiment.Table, error){
			experiment.ExtensionChurn,
			experiment.ExtensionAdaptive,
			experiment.ExtensionCombined,
		} {
			t, err := gen(opts)
			if err != nil {
				fail(err)
			}
			emit(t)
		}
	}
	if *verbose {
		hits, misses := eng.MemoStats()
		fmt.Fprintf(os.Stderr, "engine: %d workers; baseline runs computed=%d memo-hits=%d\n",
			eng.Workers(), misses, hits)
	}
}
