package main

import (
	"strings"
	"testing"
	"time"
)

// okFlags is a baseline that passes validation; cases tweak one field.
func okFlags() nodeFlags {
	return nodeFlags{
		id:        1,
		sendQ:     128,
		maxIn:     256,
		maxInIP:   64,
		scrubPace: time.Second,
		scrubWork: 1,
	}
}

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*nodeFlags)
		wantErr string // substring; empty = valid
	}{
		{"defaults", func(f *nodeFlags) {}, ""},
		{"missing id", func(f *nodeFlags) { f.id = 0 }, "-id is required"},
		{"zero sendqueue", func(f *nodeFlags) { f.sendQ = 0 }, "-sendqueue"},
		{"negative sendqueue", func(f *nodeFlags) { f.sendQ = -5 }, "-sendqueue"},
		{"zero max-inbound", func(f *nodeFlags) { f.maxIn = 0 }, "-max-inbound"},
		{"zero max-inbound-addr", func(f *nodeFlags) { f.maxInIP = 0 }, "-max-inbound-addr"},
		{"negative scrub pace", func(f *nodeFlags) { f.scrubPace = -time.Second }, "-scrub-pace"},
		{"zero scrub pace ok", func(f *nodeFlags) { f.scrubPace = 0 }, ""},
		{"zero scrub workers", func(f *nodeFlags) { f.scrubWork = 0 }, "-scrub-workers"},
		{"many scrub workers ok", func(f *nodeFlags) { f.scrubWork = 8 }, ""},
		{"negative scrub bandwidth", func(f *nodeFlags) { f.scrubBW = -1 }, "-scrub-bandwidth"},
		{"zero scrub bandwidth ok", func(f *nodeFlags) { f.scrubBW = 0 }, ""},
		{"inject without data-dir", func(f *nodeFlags) { f.inject = "1:2" }, "-inject-damage requires -data-dir"},
		{"inject with data-dir", func(f *nodeFlags) { f.inject = "1:2"; f.dataDir = "/tmp/x" }, ""},
		{"verify without data-dir", func(f *nodeFlags) { f.verify = true }, "-verify-store requires -data-dir"},
		// Offline verify mode needs no identity and skips node-flag rules.
		{"verify mode skips node rules", func(f *nodeFlags) {
			f.verify = true
			f.dataDir = "/tmp/x"
			f.id = 0
			f.sendQ = 0
		}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := okFlags()
			tc.mutate(&f)
			err := f.validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validate() = %v, want nil", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validate() = nil, want error containing %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validate() = %q, want substring %q", err, tc.wantErr)
			}
		})
	}
}

func TestParsePeers(t *testing.T) {
	book, err := parsePeers("1=localhost:7421,2=localhost:7422")
	if err != nil {
		t.Fatal(err)
	}
	if len(book) != 2 || book[1] != "localhost:7421" || book[2] != "localhost:7422" {
		t.Fatalf("parsePeers = %v", book)
	}
	if _, err := parsePeers("nonsense"); err == nil {
		t.Error("parsePeers accepted a malformed entry")
	}
	if _, err := parsePeers("x=localhost:1"); err == nil {
		t.Error("parsePeers accepted a non-numeric id")
	}
}
