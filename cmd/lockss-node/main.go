// Command lockss-node runs a real networked LOCKSS peer: the audit-and-
// repair protocol over encrypted TCP sessions with real content hashing and
// real memory-bound proofs of effort.
//
// A three-node demo network on one machine, each peer preserving its AUs in
// a durable on-disk store:
//
//	lockss-node -id 1 -listen :7421 -peers 2=localhost:7422,3=localhost:7423 -interval 10s -data-dir /tmp/n1
//	lockss-node -id 2 -listen :7422 -peers 1=localhost:7421,3=localhost:7423 -interval 10s -data-dir /tmp/n2
//	lockss-node -id 3 -listen :7423 -peers 1=localhost:7421,2=localhost:7422 -interval 10s -data-dir /tmp/n3
//
// With -data-dir, regular files placed at the top level of the directory are
// ingested as archival units (every peer must hold the same files under the
// same names); without any, the node synthesizes -aus units of -ausize bytes
// from the shared publisher stream. Either way the content lives in
// data-dir/au-*/blocks.dat behind a checksummed manifest, a background
// scrubber verifies it block by block (pace set by -scrub-pace), and repairs
// negotiated by polls are written back to disk crash-safely. Without
// -data-dir the node falls back to in-memory synthetic replicas.
//
// Damage demos: -rot corrupts one random block at startup through the
// replica (marked damage); -inject-damage AU:BLOCK flips real bits on disk
// behind the store's back — silent corruption the scrubber then has to find,
// raise the AU's audit priority for, and the next poll repairs.
// -verify-store checks every block of every AU against its manifest and
// exits (0 = everything verifies).
//
// Observability: -stats-interval prints a one-line snapshot (polls,
// transport counters, store scrub/damage/repair counters) on a cadence, so
// long-running demos are observable before their exit statistics. -admin
// embeds an HTTP control plane (internal/admin) serving Prometheus-text
// /metrics (counters, gauges and latency histograms), /healthz, JSON /aus
// and /peers inspection, the flight recorder's GET /polls (poll-lifecycle
// spans, filterable by ?au= and ?outcome=) and GET /flightrecorder (raw
// event ring), and POST /drain for a graceful drain: the node stops calling
// polls, finishes in-flight ones, flushes its store, prints exit statistics
// and exits 0.
//
// Reconfiguration without restart: SIGHUP re-applies the flag-derived
// runtime knobs (-scrub-pace, -scrub-bandwidth, -stats-interval) to the
// running node — useful after editing a process supervisor's flag file —
// and POST /reload on the admin API sets any subset of the same knobs to
// new values, e.g. {"scrub_pace":"100ms","scrub_bandwidth":1048576}.
//
// Transport knobs (see internal/node/transport.go): -sendqueue bounds each
// peer's outbound message queue — when a stalled or dead peer's queue fills,
// the oldest queued message is dropped rather than blocking the node (the
// protocol's timeouts own reliability); -max-inbound caps concurrent inbound
// sessions across all remotes, and -max-inbound-addr caps them per remote
// address (its default of 64 accommodates single-machine clusters, where
// every peer shares one IP), refusing the excess at accept. On shutdown
// the node reports its transport counters (sends, drops, dials, redials,
// queue high-water, inbound admission) alongside the protocol statistics.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"lockss/internal/admin"
	"lockss/internal/content"
	"lockss/internal/effort"
	"lockss/internal/ids"
	"lockss/internal/node"
	"lockss/internal/protocol"
	"lockss/internal/reputation"
	"lockss/internal/sched"
	"lockss/internal/store"
	"lockss/internal/trace"
)

// version labels the lockss_build_info metric; override at build time with
//
//	go build -ldflags "-X main.version=v1.2.3" ./cmd/lockss-node
var version = "dev"

// logObserver prints protocol milestones.
type logObserver struct{ id ids.PeerID }

func (o logObserver) PollConcluded(p ids.PeerID, au content.AUID, pollID uint64, out protocol.Outcome, started, now sched.Time) {
	log.Printf("poll on AU %d concluded: %v", au, out)
}
func (o logObserver) Alarm(p ids.PeerID, au content.AUID, pollID uint64, now sched.Time) {
	log.Printf("ALARM: inconclusive poll on AU %d — operator attention required", au)
}
func (o logObserver) RepairApplied(p ids.PeerID, au content.AUID, pollID uint64, block int, now sched.Time) {
	log.Printf("repaired AU %d block %d", au, block)
}
func (o logObserver) VoteSupplied(v, p ids.PeerID, au content.AUID, pollID uint64, now sched.Time) {
	log.Printf("supplied vote on AU %d to %v", au, p)
}

func parsePeers(s string) (map[ids.PeerID]string, error) {
	book := make(map[ids.PeerID]string)
	if s == "" {
		return book, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad peer entry %q (want id=host:port)", part)
		}
		id, err := strconv.ParseUint(kv[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad peer id %q: %v", kv[0], err)
		}
		book[ids.PeerID(id)] = kv[1]
	}
	return book, nil
}

// parseInjection parses -inject-damage's AU:BLOCK form (BLOCK may be "rand").
func parseInjection(s string) (content.AUID, int, error) {
	kv := strings.SplitN(s, ":", 2)
	if len(kv) != 2 {
		return 0, 0, fmt.Errorf("bad -inject-damage %q (want AU:BLOCK or AU:rand)", s)
	}
	au, err := strconv.ParseUint(kv[0], 10, 32)
	if err != nil {
		return 0, 0, fmt.Errorf("bad -inject-damage AU %q: %v", kv[0], err)
	}
	if kv[1] == "rand" {
		return content.AUID(au), -1, nil
	}
	block, err := strconv.Atoi(kv[1])
	if err != nil || block < 0 {
		return 0, 0, fmt.Errorf("bad -inject-damage block %q", kv[1])
	}
	return content.AUID(au), block, nil
}

// openStoreAUs opens (or populates) the durable store under dataDir and
// returns it with its replicas in AU order. Top-level regular files are
// ingested as AUs in name order — deterministic, so peers holding the same
// files agree on AU identities. A store holding nothing and a directory
// holding no files fall back to synthesizing aus publisher units of auSize
// bytes, durably ingested on first run and reloaded on later ones.
func openStoreAUs(dataDir string, id uint64, aus int, auSize, blockSize int64) (*store.Store, []content.Replica, error) {
	st, err := store.Open(dataDir)
	if err != nil {
		return nil, nil, err
	}
	// Name -> AU id assignments must be stable across restarts and equal
	// across peers: names already in the store keep their stored ids, new
	// names are numbered past the highest existing id in sorted order. Two
	// peers agree as long as they grow their data dirs with the same file
	// sets in the same order (initially: the same files).
	entries, err := os.ReadDir(dataDir)
	if err != nil {
		st.Close()
		return nil, nil, err
	}
	var files []string
	for _, e := range entries {
		if e.Type().IsRegular() {
			files = append(files, e.Name())
		}
	}
	sort.Strings(files)
	have := make(map[string]bool)
	nextID := content.AUID(1)
	for _, r := range st.Replicas() {
		have[r.Spec().Name] = true
		if id := r.Spec().ID; id >= nextID {
			nextID = id + 1
		}
	}
	switch {
	case len(files) > 0:
		for _, name := range files {
			if have[name] {
				continue // already preserved; the store copy is authoritative
			}
			f, err := os.Open(filepath.Join(dataDir, name))
			if err != nil {
				st.Close()
				return nil, nil, err
			}
			fi, err := f.Stat()
			if err != nil {
				f.Close()
				st.Close()
				return nil, nil, err
			}
			spec := content.AUSpec{
				ID:        nextID,
				Name:      name,
				Size:      fi.Size(),
				BlockSize: blockSize,
			}
			// Stream the file into the store block by block — an archive-sized
			// AU never sits in memory on either side of the copy.
			_, err = st.CreateFrom(spec, id<<16|uint64(spec.ID), f)
			f.Close()
			if err != nil {
				st.Close()
				return nil, nil, err
			}
			nextID++
			log.Printf("ingested %s as AU %d (%d bytes, %d blocks)", name, spec.ID, spec.Size, spec.Blocks())
		}
	case len(st.AUs()) == 0:
		for i := 0; i < aus; i++ {
			spec := content.AUSpec{
				ID:        content.AUID(i + 1),
				Name:      fmt.Sprintf("journal-%04d", 2000+i),
				Size:      auSize,
				BlockSize: blockSize,
			}
			if _, err := st.CreateFrom(spec, id<<16|uint64(i), content.PublisherReader(spec)); err != nil {
				st.Close()
				return nil, nil, err
			}
			log.Printf("ingested synthetic %s as AU %d (%d bytes)", spec.Name, spec.ID, spec.Size)
		}
	}
	var replicas []content.Replica
	for _, r := range st.Replicas() {
		replicas = append(replicas, r)
	}
	return st, replicas, nil
}

// verifyStore is the -verify-store mode: check every block of every AU
// against its manifest and report. Read errors are part of the report, not
// an early exit — one unreadable block must not mask rot found elsewhere.
// Exit 0 only if the store loads and every block verifies.
func verifyStore(dataDir string) int {
	st, err := store.Open(dataDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lockss-node: %v\n", err)
		return 1
	}
	defer st.Close()
	dam := st.VerifyAll()
	for _, d := range dam {
		if d.Unreadable {
			fmt.Printf("AU %d block %d UNREADABLE (marked=%v): %v\n", d.AU, d.Block, d.Marked, d.Err)
			continue
		}
		fmt.Printf("AU %d block %d DAMAGED (marked=%v)\n", d.AU, d.Block, d.Marked)
	}
	total := 0
	for _, r := range st.Replicas() {
		total += r.Spec().Blocks()
	}
	if len(dam) > 0 {
		fmt.Printf("store %s: %d AUs, %d/%d blocks verify\n", dataDir, len(st.AUs()), total-len(dam), total)
		return 1
	}
	fmt.Printf("store %s: %d AUs, all %d blocks verify\n", dataDir, len(st.AUs()), total)
	return 0
}

// nodeFlags collects the flag values that validation rules span, so the
// rules can be unit-tested without running main.
type nodeFlags struct {
	id        uint
	sendQ     int
	maxIn     int
	maxInIP   int
	scrubPace time.Duration
	scrubWork int
	scrubBW   int64
	dataDir   string
	inject    string
	verify    bool
}

// validate applies every up-front flag rule. Errors are returned (not
// printed) so main can exit 2 with a single clear message and tests can
// assert on the rule that fired. -verify-store is an offline mode: it needs
// only a store directory, not an identity.
func (f nodeFlags) validate() error {
	if f.verify {
		if f.dataDir == "" {
			return fmt.Errorf("-verify-store requires -data-dir")
		}
		return nil
	}
	if f.id == 0 {
		return fmt.Errorf("-id is required")
	}
	if f.sendQ < 1 {
		return fmt.Errorf("-sendqueue must be >= 1 (got %d)", f.sendQ)
	}
	if f.maxIn < 1 {
		return fmt.Errorf("-max-inbound must be >= 1 (got %d)", f.maxIn)
	}
	if f.maxInIP < 1 {
		return fmt.Errorf("-max-inbound-addr must be >= 1 (got %d)", f.maxInIP)
	}
	if f.scrubPace < 0 {
		return fmt.Errorf("-scrub-pace must be >= 0 (got %v)", f.scrubPace)
	}
	if f.scrubWork < 1 {
		return fmt.Errorf("-scrub-workers must be >= 1 (got %d)", f.scrubWork)
	}
	if f.scrubBW < 0 {
		return fmt.Errorf("-scrub-bandwidth must be >= 0 (got %d)", f.scrubBW)
	}
	if f.inject != "" && f.dataDir == "" {
		return fmt.Errorf("-inject-damage requires -data-dir")
	}
	return nil
}

func main() {
	var (
		id        = flag.Uint("id", 0, "this peer's numeric identity (required)")
		listen    = flag.String("listen", ":7421", "TCP listen address")
		adminAddr = flag.String("admin", "", "admin HTTP listen address for /metrics, /healthz, /aus, /peers, /drain (empty = disabled)")
		peers     = flag.String("peers", "", "address book: id=host:port,id=host:port,...")
		aus       = flag.Int("aus", 2, "archival units to preserve (when not ingesting files)")
		auSize    = flag.Int64("ausize", 1<<20, "bytes per synthetic archival unit")
		interval  = flag.Duration("interval", 30*time.Second, "poll interval (demo timescale)")
		rot       = flag.Bool("rot", false, "corrupt one random block at startup (marked damage)")
		verbose   = flag.Bool("v", false, "log every vote supplied")
		sendQ     = flag.Int("sendqueue", 128, "outbound message queue depth per peer (full queue drops oldest)")
		maxIn     = flag.Int("max-inbound", 256, "max concurrent inbound sessions")
		maxInIP   = flag.Int("max-inbound-addr", 64, "max concurrent inbound sessions per remote address (raise when many peers share one IP)")

		dataDir   = flag.String("data-dir", "", "durable AU store root; top-level files are ingested as AUs (empty = in-memory replicas)")
		inject    = flag.String("inject-damage", "", "flip bits on disk in AU:BLOCK (or AU:rand) at startup; requires -data-dir")
		verify    = flag.Bool("verify-store", false, "verify every block in -data-dir against its manifest and exit")
		scrubPace = flag.Duration("scrub-pace", time.Second, "pause between background scrub block verifications")
		scrubWork = flag.Int("scrub-workers", 1, "concurrent scrub workers sharding the store's AUs")
		scrubBW   = flag.Int64("scrub-bandwidth", 0, "total scrub read budget in bytes/second across all workers (0 = unlimited)")
		statsIvl  = flag.Duration("stats-interval", 0, "print a one-line stats snapshot this often (0 = only at exit)")
		record    = flag.String("record", "", "record this node's protocol event stream to a trace.jsonl for offline replay (lockss-replay)")
	)
	flag.Parse()
	log.SetPrefix(fmt.Sprintf("lockss-node[%d] ", *id))
	log.SetFlags(log.Ltime | log.Lmicroseconds)

	nf := nodeFlags{
		id: *id, sendQ: *sendQ, maxIn: *maxIn, maxInIP: *maxInIP,
		scrubPace: *scrubPace, scrubWork: *scrubWork, scrubBW: *scrubBW,
		dataDir: *dataDir, inject: *inject, verify: *verify,
	}
	if err := nf.validate(); err != nil {
		fmt.Fprintf(os.Stderr, "lockss-node: %v\n", err)
		os.Exit(2)
	}
	if *verify {
		os.Exit(verifyStore(*dataDir))
	}
	book, err := parsePeers(*peers)
	if err != nil {
		log.Fatal(err)
	}

	// Scale the protocol's preservation timescales to the demo interval.
	pcfg := protocol.DefaultConfig()
	pcfg.PollInterval = *interval
	pcfg.VoteWindow = *interval / 3
	pcfg.AckTimeout = *interval / 20
	pcfg.ProofTimeout = *interval / 20
	pcfg.VoteSlack = *interval / 10
	pcfg.ReceiptSlack = *interval / 5
	pcfg.RepairTimeout = *interval / 5
	pcfg.Refractory = *interval / 10
	pcfg.GradeDecay = 10 * *interval
	pcfg.BlockSize = 64 << 10
	// Small networks: size the poll to the population. Two peers is the
	// floor: the documented three-node demo gives each member a two-entry
	// address book.
	n := len(book)
	if n < 2 {
		log.Fatalf("need at least 2 peers in the address book, have %d", n)
	}
	pcfg.Quorum = (n + 1) / 2
	if pcfg.Quorum < 2 {
		pcfg.Quorum = 2
	}
	pcfg.InnerCircle = n
	pcfg.MaxDisagree = (pcfg.Quorum - 1) / 2
	pcfg.OuterCircle = 2
	pcfg.RefListTarget = n
	pcfg.RefListMax = n + 4

	costs := effort.DefaultCostModel()
	costs.HashBytesPerSec = 512 << 20 // modern disk+hash

	var obs protocol.Observer = logObserver{id: ids.PeerID(*id)}
	if !*verbose {
		obs = quietObserver{logObserver{id: ids.PeerID(*id)}}
	}

	// Build the replicas: durable store-backed when -data-dir is set,
	// in-memory synthetic otherwise.
	var (
		st       *store.Store
		replicas []content.Replica
	)
	if *dataDir != "" {
		st, replicas, err = openStoreAUs(*dataDir, uint64(*id), *aus, *auSize, pcfg.BlockSize)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("durable store %s: %d AUs", *dataDir, len(replicas))
	} else {
		for i := 0; i < *aus; i++ {
			spec := content.AUSpec{
				ID:        content.AUID(i + 1),
				Name:      fmt.Sprintf("journal-%04d", 2000+i),
				Size:      *auSize,
				BlockSize: pcfg.BlockSize,
			}
			replicas = append(replicas, content.NewRealReplica(spec, uint64(*id)<<16|uint64(i)))
		}
	}

	// injected collects every block corrupted at startup (-inject-damage and
	// -rot) so a recorded trace can reproduce the starting damage state.
	var injected []trace.DamageRef
	if *inject != "" {
		au, block, err := parseInjection(*inject)
		if err != nil {
			log.Fatal(err)
		}
		r := st.Replica(au)
		if r == nil {
			log.Fatalf("-inject-damage: no AU %d in store", au)
		}
		if block < 0 {
			block = rand.Intn(r.Spec().Blocks())
		}
		if err := st.InjectDamage(au, block); err != nil {
			log.Fatal(err)
		}
		injected = append(injected, trace.DamageRef{AU: au, Block: block})
		log.Printf("injected silent bit rot on disk: AU %d block %d", au, block)
	}

	// Trace recording: the recorder taps the node's event stream and tees
	// into the observer chain, so one file captures both the inputs driving
	// the state machine and its observable outputs.
	var (
		rec     *trace.Recorder
		recFile *os.File
	)
	var tap protocol.EnvTap
	if *record != "" {
		f, err := os.Create(*record)
		if err != nil {
			log.Fatal(err)
		}
		recFile = f
		rec = trace.NewRecorder(f)
		tap = rec
		obs = protocol.TeeObserver(rec, obs)
	}

	nd, err := node.New(node.Config{
		ID:                ids.PeerID(*id),
		Listen:            *listen,
		AddressBook:       book,
		Protocol:          pcfg,
		Costs:             costs,
		MBF:               effort.DefaultMBFParams(),
		EffortUnit:        0.05,
		Seed:              uint64(*id) * 7919,
		Observer:          obs,
		Tap:               tap,
		SendQueue:         *sendQ,
		MaxInbound:        *maxIn,
		MaxInboundPerAddr: *maxInIP,
		Store:             st,
		ScrubPace:         *scrubPace,
		ScrubWorkers:      *scrubWork,
		ScrubBandwidth:    *scrubBW,
		Logf: func(format string, args ...any) {
			if *verbose {
				log.Printf(format, args...)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Reference lists come from the address book in sorted order — a
	// deterministic order is what lets a recorded trace reproduce the
	// peer's bootstrap state exactly.
	refs := make([]ids.PeerID, 0, len(book))
	for p := range book {
		refs = append(refs, p)
	}
	sort.Slice(refs, func(i, j int) bool { return refs[i] < refs[j] })
	for _, replica := range replicas {
		spec := replica.Spec()
		if *rot {
			block := rand.Intn(spec.Blocks())
			replica.Damage(block)
			injected = append(injected, trace.DamageRef{AU: spec.ID, Block: block})
			log.Printf("simulated bit rot: AU %d block %d corrupted", spec.ID, block)
		}
		if err := nd.AddAU(replica, refs); err != nil {
			log.Fatal(err)
		}
		for _, r := range refs {
			nd.Peer().SeedGrade(spec.ID, r, reputation.Even)
		}
	}
	nd.SetFriends(refs)

	if rec != nil {
		hdr := trace.Header{
			Peer:       ids.PeerID(*id),
			Seed:       uint64(*id) * 7919,
			StartT:     time.Now().UnixNano(),
			Protocol:   pcfg,
			Costs:      costs,
			MBF:        effort.DefaultMBFParams(),
			EffortUnit: 0.05,
			Friends:    refs,
			Injected:   injected,
		}
		grades := make([]trace.GradeRef, 0, len(refs))
		for _, r := range refs {
			grades = append(grades, trace.GradeRef{Peer: r, Grade: uint8(reputation.Even)})
		}
		for _, replica := range replicas {
			spec := replica.Spec()
			hdr.AUs = append(hdr.AUs, trace.AUHeader{
				ID:        spec.ID,
				Name:      spec.Name,
				Size:      spec.Size,
				BlockSize: spec.BlockSize,
				// The salt only individualizes corruption marks; replayed
				// corrupt bytes differ from the recorded node's either way
				// (see the trace package's determinism contract).
				Salt:   uint64(*id)<<16 | uint64(spec.ID),
				Refs:   refs,
				Grades: grades,
			})
		}
		if err := rec.WriteHeader(hdr); err != nil {
			log.Fatal(err)
		}
		log.Printf("recording trace to %s", *record)
	}

	if err := nd.Start(); err != nil {
		log.Fatal(err)
	}
	log.Printf("preserving %d AUs; polling every %v; peers: %v", len(replicas), *interval, *peers)

	// statsCtl re-arms the periodic stats ticker at runtime; SIGHUP and the
	// admin API's POST /reload both feed it. Buffered so senders never block;
	// back-to-back reconfigurations coalesce to the newest interval.
	statsCtl := make(chan time.Duration, 1)
	setStatsInterval := func(d time.Duration) {
		for {
			select {
			case statsCtl <- d:
				return
			default:
				select {
				case <-statsCtl:
				default:
				}
			}
		}
	}

	// The admin control plane serves /metrics, /healthz, /aus, /peers,
	// /polls, /flightrecorder, /reload and /drain off the running node. A
	// completed drain ends the process the same way a signal does, through
	// the shared shutdown path below.
	drained := make(chan struct{})
	if *adminAddr != "" {
		// The scrub health check trips when the scrubber's counters stop
		// moving for longer than a few full passes: pace per block across
		// the whole store, plus the between-pass rest (10x pace).
		var stall time.Duration
		if st != nil {
			pace := *scrubPace
			if pace <= 0 {
				pace = time.Second // store.ScrubConfig default
			}
			blocks := 0
			for _, r := range replicas {
				blocks += r.Spec().Blocks()
			}
			stall = 3 * time.Duration(blocks+10) * pace
		}
		adm := admin.New(nd, admin.Options{
			Logf:       log.Printf,
			OnDrained:  func() { close(drained) },
			ScrubStall: stall,
			Version:    version,
			OnReload: func(c admin.ReloadConfig) {
				if c.StatsInterval != nil {
					setStatsInterval(*c.StatsInterval)
				}
			},
		})
		if err := adm.Start(*adminAddr); err != nil {
			log.Fatal(err)
		}
		defer adm.Close()
		log.Printf("admin API on http://%v (metrics, healthz, aus, peers, polls, flightrecorder, reload, drain)", adm.Addr())
	}

	// statsLine renders one aggregate snapshot; the periodic ticker and the
	// exit report below share it so the two can never drift apart.
	statsLine := func(s node.Stats) string {
		line := fmt.Sprintf("polls ok=%d inq=%d incon=%d repfail=%d votes=%d repairs rx=%d tx=%d | transport sent=%d dropped=%d dials=%d",
			s.Peer.PollsSucceeded, s.Peer.PollsInquorate, s.Peer.PollsInconclusive, s.Peer.PollsRepairFailed,
			s.Peer.VotesReceived, s.Peer.RepairsReceived, s.Peer.RepairsServed,
			s.Transport.Sent, s.Transport.Drops, s.Transport.Dials)
		if st != nil {
			line += fmt.Sprintf(" | store scanned=%d verified=%d damaged=%d repaired=%d passes=%d",
				s.Store.BlocksScanned, s.Store.BlocksVerified, s.Store.BlocksDamaged,
				s.Store.BlocksRepaired, s.Store.ScrubPasses)
		}
		return line
	}
	// The stats loop always runs so an interval can be switched on, off or
	// changed at runtime (SIGHUP, POST /reload) even when the node started
	// with -stats-interval 0.
	statsDone := make(chan struct{})
	go func() {
		tick := time.NewTicker(time.Hour)
		tick.Stop()
		rearm := func(d time.Duration) {
			if d > 0 {
				tick.Reset(d)
				return
			}
			tick.Stop()
			// Drop a tick that fired before the Stop landed.
			select {
			case <-tick.C:
			default:
			}
		}
		rearm(*statsIvl)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				if s, ok := nd.StatsWithin(5 * time.Second); ok {
					log.Printf("stats: %s", statsLine(s))
				} else {
					log.Printf("stats: actor loop unresponsive")
				}
			case d := <-statsCtl:
				rearm(d)
				log.Printf("stats interval now %v", d)
			case <-statsDone:
				return
			}
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
wait:
	for {
		select {
		case <-sig:
			log.Printf("shutting down")
			break wait
		case <-drained:
			log.Printf("drained via admin API; shutting down")
			break wait
		case <-hup:
			// SIGHUP re-applies the flag-derived runtime knobs — the admin
			// API's POST /reload is the channel for setting new values.
			nd.SetScrubPace(*scrubPace)
			nd.SetScrubBandwidth(*scrubBW)
			setStatsInterval(*statsIvl)
			log.Printf("SIGHUP: reapplied scrub pace %v, scrub bandwidth %d B/s, stats interval %v",
				*scrubPace, *scrubBW, *statsIvl)
		}
	}
	close(statsDone)
	nd.Stop() // idempotent: a no-op when the drain already stopped the node
	if rec != nil {
		// The node has fully drained: no tap callback can still be running.
		if err := rec.Close(); err != nil {
			log.Printf("trace recording failed: %v", err)
		} else {
			log.Printf("trace recorded to %s", *record)
		}
		recFile.Close()
	}

	// Exit report: the same aggregate snapshot the ticker renders, expanded.
	s := nd.Stats()
	log.Printf("stats: %s", statsLine(s))
	log.Printf("polls: ok=%d inquorate=%d inconclusive=%d repair-failed=%d alarms=%d; votes supplied=%d; repairs served=%d",
		s.Peer.PollsSucceeded, s.Peer.PollsInquorate, s.Peer.PollsInconclusive, s.Peer.PollsRepairFailed,
		s.Peer.Alarms, s.Peer.VotesSupplied, s.Peer.RepairsServed)
	log.Printf("transport: sent=%d dropped=%d (queue-full=%d) dials=%d redials=%d dial-failures=%d queue-highwater=%d inbound accepted=%d rejected=%d",
		s.Transport.Sent, s.Transport.Drops, s.Transport.DropsQueueFull, s.Transport.Dials,
		s.Transport.Redials, s.Transport.DialFailures, s.Transport.QueueHighWater,
		s.Transport.InboundAccepted, s.Transport.InboundRejected)
	if st != nil {
		log.Printf("store: scanned=%d verified=%d damaged=%d repaired=%d passes=%d manifest-writes=%d injected=%d",
			s.Store.BlocksScanned, s.Store.BlocksVerified, s.Store.BlocksDamaged, s.Store.BlocksRepaired,
			s.Store.ScrubPasses, s.Store.ManifestWrites, s.Store.DamageInjected)
		log.Printf("store io: ingested=%dB scrubbed=%dB manifest mutations=%d commits=%d fsyncs=%d",
			s.Store.BytesIngested, s.Store.BytesScrubbed, s.Store.ManifestMutations,
			s.Store.ManifestCommits, s.Store.Fsyncs)
	}
}

// quietObserver suppresses per-vote logging.
type quietObserver struct{ logObserver }

func (q quietObserver) VoteSupplied(ids.PeerID, ids.PeerID, content.AUID, uint64, sched.Time) {}
