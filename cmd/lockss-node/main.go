// Command lockss-node runs a real networked LOCKSS peer: the audit-and-
// repair protocol over encrypted TCP sessions with real content hashing and
// real memory-bound proofs of effort.
//
// A three-node demo network on one machine:
//
//	lockss-node -id 1 -listen :7421 -peers 2=localhost:7422,3=localhost:7423 -interval 10s
//	lockss-node -id 2 -listen :7422 -peers 1=localhost:7421,3=localhost:7423 -interval 10s
//	lockss-node -id 3 -listen :7423 -peers 1=localhost:7421,2=localhost:7422 -interval 10s
//
// Each node preserves -aus archival units of -ausize bytes generated from
// the same synthetic publisher, and audits them every -interval. With -rot,
// a node corrupts one random block at startup to demonstrate repair.
//
// Transport knobs (see internal/node/transport.go): -sendqueue bounds each
// peer's outbound message queue — when a stalled or dead peer's queue fills,
// the oldest queued message is dropped rather than blocking the node (the
// protocol's timeouts own reliability); -max-inbound caps concurrent inbound
// sessions across all remotes, and -max-inbound-addr caps them per remote
// address (its default of 64 accommodates single-machine clusters, where
// every peer shares one IP), refusing the excess at accept. On shutdown
// the node reports its transport counters (sends, drops, dials, redials,
// queue high-water, inbound admission) alongside the protocol statistics.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"lockss/internal/content"
	"lockss/internal/effort"
	"lockss/internal/ids"
	"lockss/internal/node"
	"lockss/internal/protocol"
	"lockss/internal/reputation"
	"lockss/internal/sched"
)

// logObserver prints protocol milestones.
type logObserver struct{ id ids.PeerID }

func (o logObserver) PollConcluded(p ids.PeerID, au content.AUID, out protocol.Outcome, now sched.Time) {
	log.Printf("poll on AU %d concluded: %v", au, out)
}
func (o logObserver) Alarm(p ids.PeerID, au content.AUID, now sched.Time) {
	log.Printf("ALARM: inconclusive poll on AU %d — operator attention required", au)
}
func (o logObserver) RepairApplied(p ids.PeerID, au content.AUID, block int, now sched.Time) {
	log.Printf("repaired AU %d block %d", au, block)
}
func (o logObserver) VoteSupplied(v, p ids.PeerID, au content.AUID, now sched.Time) {
	log.Printf("supplied vote on AU %d to %v", au, p)
}

func parsePeers(s string) (map[ids.PeerID]string, error) {
	book := make(map[ids.PeerID]string)
	if s == "" {
		return book, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad peer entry %q (want id=host:port)", part)
		}
		id, err := strconv.ParseUint(kv[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad peer id %q: %v", kv[0], err)
		}
		book[ids.PeerID(id)] = kv[1]
	}
	return book, nil
}

func main() {
	var (
		id       = flag.Uint("id", 0, "this peer's numeric identity (required)")
		listen   = flag.String("listen", ":7421", "TCP listen address")
		peers    = flag.String("peers", "", "address book: id=host:port,id=host:port,...")
		aus      = flag.Int("aus", 2, "archival units to preserve")
		auSize   = flag.Int64("ausize", 1<<20, "bytes per archival unit")
		interval = flag.Duration("interval", 30*time.Second, "poll interval (demo timescale)")
		rot      = flag.Bool("rot", false, "corrupt one random block at startup")
		verbose  = flag.Bool("v", false, "log every vote supplied")
		sendQ    = flag.Int("sendqueue", 128, "outbound message queue depth per peer (full queue drops oldest)")
		maxIn    = flag.Int("max-inbound", 256, "max concurrent inbound sessions")
		maxInIP  = flag.Int("max-inbound-addr", 64, "max concurrent inbound sessions per remote address (raise when many peers share one IP)")
	)
	flag.Parse()
	log.SetPrefix(fmt.Sprintf("lockss-node[%d] ", *id))
	log.SetFlags(log.Ltime | log.Lmicroseconds)

	if *id == 0 {
		fmt.Fprintln(os.Stderr, "lockss-node: -id is required")
		os.Exit(2)
	}
	book, err := parsePeers(*peers)
	if err != nil {
		log.Fatal(err)
	}

	// Scale the protocol's preservation timescales to the demo interval.
	pcfg := protocol.DefaultConfig()
	pcfg.PollInterval = *interval
	pcfg.VoteWindow = *interval / 3
	pcfg.AckTimeout = *interval / 20
	pcfg.ProofTimeout = *interval / 20
	pcfg.VoteSlack = *interval / 10
	pcfg.ReceiptSlack = *interval / 5
	pcfg.RepairTimeout = *interval / 5
	pcfg.Refractory = *interval / 10
	pcfg.GradeDecay = 10 * *interval
	pcfg.BlockSize = 64 << 10
	// Small networks: size the poll to the population. Two peers is the
	// floor: the documented three-node demo gives each member a two-entry
	// address book.
	n := len(book)
	if n < 2 {
		log.Fatalf("need at least 2 peers in the address book, have %d", n)
	}
	pcfg.Quorum = (n + 1) / 2
	if pcfg.Quorum < 2 {
		pcfg.Quorum = 2
	}
	pcfg.InnerCircle = n
	pcfg.MaxDisagree = (pcfg.Quorum - 1) / 2
	pcfg.OuterCircle = 2
	pcfg.RefListTarget = n
	pcfg.RefListMax = n + 4

	costs := effort.DefaultCostModel()
	costs.HashBytesPerSec = 512 << 20 // modern disk+hash

	var obs protocol.Observer = logObserver{id: ids.PeerID(*id)}
	if !*verbose {
		obs = quietObserver{logObserver{id: ids.PeerID(*id)}}
	}

	nd, err := node.New(node.Config{
		ID:                ids.PeerID(*id),
		Listen:            *listen,
		AddressBook:       book,
		Protocol:          pcfg,
		Costs:             costs,
		MBF:               effort.DefaultMBFParams(),
		EffortUnit:        0.05,
		Seed:              uint64(*id) * 7919,
		Observer:          obs,
		SendQueue:         *sendQ,
		MaxInbound:        *maxIn,
		MaxInboundPerAddr: *maxInIP,
		Logf: func(format string, args ...any) {
			if *verbose {
				log.Printf(format, args...)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	var refs []ids.PeerID
	for p := range book {
		refs = append(refs, p)
	}
	for i := 0; i < *aus; i++ {
		spec := content.AUSpec{
			ID:        content.AUID(i + 1),
			Name:      fmt.Sprintf("journal-%04d", 2000+i),
			Size:      *auSize,
			BlockSize: pcfg.BlockSize,
		}
		replica := content.NewRealReplica(spec, uint64(*id)<<16|uint64(i))
		if *rot {
			block := rand.Intn(spec.Blocks())
			replica.Damage(block)
			log.Printf("simulated bit rot: AU %d block %d corrupted", spec.ID, block)
		}
		if err := nd.AddAU(replica, refs); err != nil {
			log.Fatal(err)
		}
		for _, r := range refs {
			nd.Peer().SeedGrade(spec.ID, r, reputation.Even)
		}
	}
	nd.SetFriends(refs)

	if err := nd.Start(); err != nil {
		log.Fatal(err)
	}
	log.Printf("preserving %d AUs of %d bytes; polling every %v; peers: %v", *aus, *auSize, *interval, *peers)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down")
	nd.Stop()

	st := nd.Peer().Stats()
	log.Printf("polls: ok=%d inquorate=%d inconclusive=%d repair-failed=%d; votes supplied=%d; repairs served=%d",
		st.PollsSucceeded, st.PollsInquorate, st.PollsInconclusive, st.PollsRepairFailed,
		st.VotesSupplied, st.RepairsServed)
	ts := nd.TransportStats()
	log.Printf("transport: sent=%d dropped=%d (queue-full=%d) dials=%d redials=%d dial-failures=%d queue-highwater=%d inbound accepted=%d rejected=%d",
		ts.Sent, ts.Drops, ts.DropsQueueFull, ts.Dials, ts.Redials, ts.DialFailures,
		ts.QueueHighWater, ts.InboundAccepted, ts.InboundRejected)
}

// quietObserver suppresses per-vote logging.
type quietObserver struct{ logObserver }

func (q quietObserver) VoteSupplied(ids.PeerID, ids.PeerID, content.AUID, sched.Time) {}
