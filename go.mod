module lockss

go 1.24
