// Package lockss is a from-scratch Go reproduction of the attrition-resistant
// LOCKSS peer-to-peer digital preservation system described in:
//
//	TJ Giuli, Petros Maniatis, Mary Baker, David S. H. Rosenthal, Mema
//	Roussopoulos. "Attrition Defenses for a Peer-to-Peer Digital
//	Preservation System." USENIX Annual Technical Conference, 2005.
//
// The library contains the full audit-and-repair protocol (opinion polls
// over replica hashes, block-level repair, discovery), the paper's three
// defense families (admission control with rate limits, first-hand
// reputation and effort balancing; desynchronization; redundancy), a
// deterministic discrete-event simulator with the paper's network and cost
// models, the three adversary classes of the evaluation, and a harness that
// regenerates every figure and table of §7.
//
// This package is the public facade: simulations, attacks and experiment
// generators re-exported in one place. Examples live under examples/, the
// CLI under cmd/lockss-sim, and a real TCP-networked peer under
// cmd/lockss-node.
package lockss

import (
	"io"

	"lockss/internal/adversary"
	"lockss/internal/experiment"
	"lockss/internal/sim"
	"lockss/internal/world"
)

// Config sizes a simulated population; see DefaultConfig for the paper's
// operating point.
type Config = world.Config

// DefaultConfig returns the paper's §6.3 configuration: 100 peers, 50 AUs
// of 0.5 GB, 3-month polls, quorum 10, 2 simulated years.
func DefaultConfig() Config { return world.Default() }

// Duration re-exports the simulated time units.
type Duration = sim.Duration

// Convenient time units for configuring simulations.
const (
	Second = sim.Second
	Hour   = sim.Hour
	Day    = sim.Day
	Month  = sim.Month
	Year   = sim.Year
)

// Adversary is an attack strategy that can be installed on a simulation.
type Adversary = adversary.Adversary

// Defection selects where the brute-force adversary abandons the protocol.
type Defection = adversary.Defection

// Brute-force defection strategies (Table 1).
const (
	DefectIntro     = adversary.DefectIntro
	DefectRemaining = adversary.DefectRemaining
	DefectNone      = adversary.DefectNone
)

// NewPipeStoppage returns the network-level flooding adversary: repeated
// pulses suppressing all communication for a coverage fraction of peers.
func NewPipeStoppage(coverage float64, duration, recuperation Duration) Adversary {
	return &adversary.PipeStoppage{Pulse: adversary.Pulse{
		Coverage: coverage, Duration: duration, Recuperation: recuperation,
	}}
}

// NewAdmissionFlood returns the application-level garbage-invitation
// adversary targeting the admission control filter.
func NewAdmissionFlood(coverage float64, duration, recuperation Duration) Adversary {
	return &adversary.AdmissionFlood{Pulse: adversary.Pulse{
		Coverage: coverage, Duration: duration, Recuperation: recuperation,
	}}
}

// NewBruteForce returns the effortful adversary that passes admission
// control with valid introductory efforts and defects at the given stage.
func NewBruteForce(d Defection) Adversary {
	return &adversary.BruteForce{Defection: d}
}

// NewVoteFlood returns the vote-flood adversary (§5.1): unsolicited bogus
// votes, which the protocol ignores before any expensive processing. It
// exists to demonstrate the defense holds.
func NewVoteFlood(coverage float64, duration, recuperation Duration) Adversary {
	return &adversary.VoteFlood{Pulse: adversary.Pulse{
		Coverage: coverage, Duration: duration, Recuperation: recuperation,
	}}
}

// NewCombined installs several attack strategies at once (§9's combined-
// strategy question).
func NewCombined(parts ...Adversary) Adversary {
	return &adversary.Combined{Parts: parts}
}

// Results summarizes one simulation run.
type Results = experiment.RunStats

// Comparison relates an attack run to a baseline via the paper's four
// metrics.
type Comparison = experiment.Comparison

// Run executes one simulation. attack may be nil for a baseline run.
func Run(cfg Config, attack func() Adversary) (Results, error) {
	return experiment.RunOne(cfg, attack)
}

// RunSeeds executes `seeds` runs with distinct seeds and averages.
func RunSeeds(cfg Config, attack func() Adversary, seeds int) (Results, error) {
	return experiment.RunAveraged(cfg, attack, seeds)
}

// RunLayered stacks `layers` runs to model large collections (the paper's
// 600-AU layering technique).
func RunLayered(cfg Config, attack func() Adversary, layers int) (Results, error) {
	return experiment.RunLayered(cfg, attack, layers)
}

// Compare derives access failure, delay ratio, friction and cost ratio.
func Compare(attack, baseline Results) Comparison {
	return experiment.Compare(attack, baseline)
}

// Scale selects experiment fidelity.
type Scale = experiment.Scale

// Experiment scales.
const (
	ScaleTiny  = experiment.ScaleTiny
	ScaleSmall = experiment.ScaleSmall
	ScalePaper = experiment.ScalePaper
)

// ExperimentOptions configures figure generation.
type ExperimentOptions = experiment.Options

// Table is a printable reproduction of one paper figure or table.
type Table = experiment.Table

// Figure2 regenerates the baseline figure.
func Figure2(o ExperimentOptions) (*Table, error) { return experiment.Figure2(o) }

// FiguresPipeStoppage regenerates Figures 3-5.
func FiguresPipeStoppage(o ExperimentOptions) ([]*Table, error) {
	return experiment.FiguresPipeStoppage(o)
}

// FiguresAdmissionFlood regenerates Figures 6-8.
func FiguresAdmissionFlood(o ExperimentOptions) ([]*Table, error) {
	return experiment.FiguresAdmissionFlood(o)
}

// Table1 regenerates the brute-force defection table.
func Table1(o ExperimentOptions) (*Table, error) { return experiment.Table1(o) }

// Ablations regenerates the design-choice ablation tables (refractory
// period, drop probabilities, introductions, desynchronization, effort
// balancing).
func Ablations(o ExperimentOptions) ([]*Table, error) {
	var out []*Table
	for _, gen := range []func(ExperimentOptions) (*Table, error){
		experiment.AblationRefractory,
		experiment.AblationDropProb,
		experiment.AblationIntroductions,
		experiment.AblationDesynchronization,
		experiment.AblationEffortBalancing,
	} {
		t, err := gen(o)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// Extensions regenerates the §9 future-work studies: dynamic populations
// (churn) and adaptive acceptance.
func Extensions(o ExperimentOptions) ([]*Table, error) {
	var out []*Table
	for _, gen := range []func(ExperimentOptions) (*Table, error){
		experiment.ExtensionChurn,
		experiment.ExtensionAdaptive,
		experiment.ExtensionCombined,
	} {
		t, err := gen(o)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// PrintTable renders a table to w.
func PrintTable(w io.Writer, t *Table) { t.Fprint(w) }
