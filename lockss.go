// Package lockss is a from-scratch Go reproduction of the attrition-resistant
// LOCKSS peer-to-peer digital preservation system described in:
//
//	TJ Giuli, Petros Maniatis, Mary Baker, David S. H. Rosenthal, Mema
//	Roussopoulos. "Attrition Defenses for a Peer-to-Peer Digital
//	Preservation System." USENIX Annual Technical Conference, 2005.
//
// The library contains the full audit-and-repair protocol (opinion polls
// over replica hashes, block-level repair, discovery), the paper's three
// defense families (admission control with rate limits, first-hand
// reputation and effort balancing; desynchronization; redundancy), a
// deterministic discrete-event simulator with the paper's network and cost
// models, the three adversary classes of the evaluation, and a declarative
// scenario API: every figure and table of §7 is a registered Scenario, and
// arbitrary new experiments — config mutators, attack factories, sweep axes
// over any numeric parameter — register and run through the same engine,
// with context cancellation and structured (text/JSON/CSV) results.
//
// This package is the public facade: simulations, attacks and the scenario
// registry re-exported in one place. Examples live under examples/, the CLI
// under cmd/lockss-sim, and a real TCP-networked peer under cmd/lockss-node.
package lockss

import (
	"context"
	"io"

	"lockss/internal/adversary"
	"lockss/internal/experiment"
	"lockss/internal/sim"
	"lockss/internal/world"
)

// Config sizes a simulated population; see DefaultConfig for the paper's
// operating point.
type Config = world.Config

// DefaultConfig returns the paper's §6.3 configuration: 100 peers, 50 AUs
// of 0.5 GB, 3-month polls, quorum 10, 2 simulated years.
func DefaultConfig() Config { return world.Default() }

// Duration re-exports the simulated time units.
type Duration = sim.Duration

// Convenient time units for configuring simulations.
const (
	Second = sim.Second
	Hour   = sim.Hour
	Day    = sim.Day
	Month  = sim.Month
	Year   = sim.Year
)

// Adversary is an attack strategy that can be installed on a simulation.
type Adversary = adversary.Adversary

// Defection selects where the brute-force adversary abandons the protocol.
type Defection = adversary.Defection

// Brute-force defection strategies (Table 1).
const (
	DefectIntro     = adversary.DefectIntro
	DefectRemaining = adversary.DefectRemaining
	DefectNone      = adversary.DefectNone
)

// NewPipeStoppage returns the network-level flooding adversary: repeated
// pulses suppressing all communication for a coverage fraction of peers.
func NewPipeStoppage(coverage float64, duration, recuperation Duration) Adversary {
	return &adversary.PipeStoppage{Pulse: adversary.Pulse{
		Coverage: coverage, Duration: duration, Recuperation: recuperation,
	}}
}

// NewAdmissionFlood returns the application-level garbage-invitation
// adversary targeting the admission control filter.
func NewAdmissionFlood(coverage float64, duration, recuperation Duration) Adversary {
	return &adversary.AdmissionFlood{Pulse: adversary.Pulse{
		Coverage: coverage, Duration: duration, Recuperation: recuperation,
	}}
}

// NewBruteForce returns the effortful adversary that passes admission
// control with valid introductory efforts and defects at the given stage.
func NewBruteForce(d Defection) Adversary {
	return &adversary.BruteForce{Defection: d}
}

// NewVoteFlood returns the vote-flood adversary (§5.1): unsolicited bogus
// votes, which the protocol ignores before any expensive processing. It
// exists to demonstrate the defense holds.
func NewVoteFlood(coverage float64, duration, recuperation Duration) Adversary {
	return &adversary.VoteFlood{Pulse: adversary.Pulse{
		Coverage: coverage, Duration: duration, Recuperation: recuperation,
	}}
}

// NewCombined installs several attack strategies at once (§9's combined-
// strategy question).
func NewCombined(parts ...Adversary) Adversary {
	return &adversary.Combined{Parts: parts}
}

// Results summarizes one simulation run.
type Results = experiment.RunStats

// Comparison relates an attack run to a baseline via the paper's four
// metrics.
type Comparison = experiment.Comparison

// Run executes one simulation on the process-wide worker pool. attack may
// be nil for a baseline run. The context cancels queued work promptly;
// in-flight simulation runs finish and are discarded.
func Run(ctx context.Context, cfg Config, attack func() Adversary) (Results, error) {
	return experiment.Run(ctx, cfg, attack)
}

// RunSeeds executes `seeds` runs with distinct seeds and averages; seeds
// must be at least 1.
func RunSeeds(ctx context.Context, cfg Config, attack func() Adversary, seeds int) (Results, error) {
	return experiment.RunAveraged(ctx, cfg, attack, seeds)
}

// RunLayered stacks `layers` runs to model large collections (the paper's
// 600-AU layering technique); layers must be at least 1.
func RunLayered(ctx context.Context, cfg Config, attack func() Adversary, layers int) (Results, error) {
	return experiment.RunLayered(ctx, cfg, attack, layers)
}

// Compare derives access failure, delay ratio, friction and cost ratio.
func Compare(attack, baseline Results) Comparison {
	return experiment.Compare(attack, baseline)
}

// Scale selects experiment fidelity.
type Scale = experiment.Scale

// Experiment scales.
const (
	ScaleTiny  = experiment.ScaleTiny
	ScaleSmall = experiment.ScaleSmall
	ScalePaper = experiment.ScalePaper
)

// ExperimentOptions configures scenario generation.
type ExperimentOptions = experiment.Options

// Table is a renderable reproduction of one figure or table: typed cells
// with aligned-text (Fprint), JSON (WriteJSON) and CSV (WriteCSV) output.
type Table = experiment.Table

// Cell is one typed table cell.
type Cell = experiment.Cell

// --- The declarative scenario API -------------------------------------------

// Scenario declaratively specifies an experiment: base config, mutators,
// attack factory, sweep axes, seeds, layers, and rendering.
type Scenario = experiment.Scenario

// Axis is one swept dimension of a scenario grid.
type Axis = experiment.Axis

// ConfigMutator adjusts a configuration in place.
type ConfigMutator = experiment.ConfigMutator

// Point identifies one cell of a scenario's sweep grid.
type Point = experiment.Point

// PointResult is the structured outcome of one grid cell.
type PointResult = experiment.PointResult

// ScenarioResult is a completed scenario run, one PointResult per cell.
type ScenarioResult = experiment.Result

// RegisterScenario adds a scenario to the process-wide registry.
func RegisterScenario(s *Scenario) error { return experiment.Register(s) }

// LookupScenario returns a registered scenario by name.
func LookupScenario(name string) (*Scenario, bool) { return experiment.Lookup(name) }

// Scenarios lists every registered scenario, sorted by name. The paper's
// figures, Table 1, the ablations and the §9 extensions are pre-registered.
func Scenarios() []*Scenario { return experiment.List() }

// RunScenario executes a scenario's sweep grid across the worker-pool
// engine and returns structured per-point results. The context cancels
// queued points promptly.
func RunScenario(ctx context.Context, s *Scenario, o ExperimentOptions) (*ScenarioResult, error) {
	return experiment.RunScenario(ctx, s, o)
}

// RunScenarioTables executes a scenario and renders its tables.
func RunScenarioTables(ctx context.Context, s *Scenario, o ExperimentOptions) ([]*Table, error) {
	return s.Run(ctx, o)
}

// --- Legacy generator wrappers ----------------------------------------------
//
// Each wraps the registered scenario of the same artifact; output is
// byte-identical to running the scenario directly.

// Figure2 regenerates the baseline figure.
func Figure2(o ExperimentOptions) (*Table, error) { return experiment.Figure2(o) }

// FiguresPipeStoppage regenerates Figures 3-5.
func FiguresPipeStoppage(o ExperimentOptions) ([]*Table, error) {
	return experiment.FiguresPipeStoppage(o)
}

// FiguresAdmissionFlood regenerates Figures 6-8.
func FiguresAdmissionFlood(o ExperimentOptions) ([]*Table, error) {
	return experiment.FiguresAdmissionFlood(o)
}

// Table1 regenerates the brute-force defection table.
func Table1(o ExperimentOptions) (*Table, error) { return experiment.Table1(o) }

// Ablations regenerates the design-choice ablation tables (refractory
// period, drop probabilities, introductions, desynchronization, effort
// balancing).
func Ablations(o ExperimentOptions) ([]*Table, error) {
	var out []*Table
	for _, gen := range []func(ExperimentOptions) (*Table, error){
		experiment.AblationRefractory,
		experiment.AblationDropProb,
		experiment.AblationIntroductions,
		experiment.AblationDesynchronization,
		experiment.AblationEffortBalancing,
	} {
		t, err := gen(o)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// Extensions regenerates the §9 future-work studies: dynamic populations
// (churn), adaptive acceptance, and combined adversaries.
func Extensions(o ExperimentOptions) ([]*Table, error) {
	var out []*Table
	for _, gen := range []func(ExperimentOptions) (*Table, error){
		experiment.ExtensionChurn,
		experiment.ExtensionAdaptive,
		experiment.ExtensionCombined,
	} {
		t, err := gen(o)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// PrintTable renders a table to w.
func PrintTable(w io.Writer, t *Table) { t.Fprint(w) }
