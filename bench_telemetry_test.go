package lockss

// The telemetry-overhead snapshot: the always-on recorder's cost measured on
// the simulator, where the same workload runs with and without telemetry
// attached. Distilled into BENCH_10.json: best-of-3 events/sec for each
// configuration, the relative overhead, and the histogram record path's
// ns/op and allocs/op. Like the other snapshots it is a measurement first
// and a gate second: the one acceptance bound it asserts is that attaching
// telemetry costs at most 5% of event throughput — "always-on" is only
// honest if nobody is tempted to turn it off.
//
//	LOCKSS_BENCH_OUT=BENCH_10.json go test . -run TestBenchTelemetryOverhead -v
//
// LOCKSS_BENCH_PEERS and LOCKSS_BENCH_DAYS shrink the workload for smoke
// runs; the committed BENCH_10.json records the defaults.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"lockss/internal/experiment"
	"lockss/internal/sim"
	"lockss/internal/telemetry"
	"lockss/internal/world"
)

// telemetryOverheadBound is the asserted ceiling on relative event-rate
// overhead with the recorder attached.
const telemetryOverheadBound = 0.05

// telemetryBenchReport is the BENCH_10.json schema.
type telemetryBenchReport struct {
	Peers        int     `json:"peers"`
	AUs          int     `json:"aus"`
	DurationDays float64 `json:"duration_days"`
	Events       uint64  `json:"events_executed"`
	CPUs         int     `json:"cpus"`
	GoMaxProcs   int     `json:"gomaxprocs"`
	Rounds       int     `json:"rounds"`

	BareEventsPerSec float64 `json:"bare_events_per_sec"`
	TelEventsPerSec  float64 `json:"telemetry_events_per_sec"`
	// Overhead is 1 - telemetry/bare event rate (negative = noise).
	Overhead      float64 `json:"overhead"`
	OverheadBound float64 `json:"overhead_bound"`
	UnderBound    bool    `json:"under_bound"`

	// Samples recorded across every histogram by the telemetry run.
	HistogramSamples uint64 `json:"histogram_samples"`
	// The isolated record path, from a tight-loop measurement.
	ObserveNsPerOp     float64 `json:"observe_ns_per_op"`
	ObserveAllocsPerOp float64 `json:"observe_allocs_per_op"`
}

// telemetryBenchWorld is the overhead workload: the ScaleSmall population
// shape, attack-free, sized down by the usual env overrides.
func telemetryBenchWorld(t *testing.T) world.Config {
	cfg := experiment.Options{Scale: experiment.ScaleSmall}.BaseWorld()
	if v := os.Getenv("LOCKSS_BENCH_PEERS"); v != "" {
		if _, err := fmt.Sscanf(v, "%d", &cfg.Peers); err != nil {
			t.Fatalf("bad LOCKSS_BENCH_PEERS %q: %v", v, err)
		}
	}
	if v := os.Getenv("LOCKSS_BENCH_DAYS"); v != "" {
		var days int
		if _, err := fmt.Sscanf(v, "%d", &days); err != nil {
			t.Fatalf("bad LOCKSS_BENCH_DAYS %q: %v", v, err)
		}
		cfg.Duration = sim.Duration(days) * sim.Day
	}
	return cfg
}

// bestEventRate runs the workload rounds times and returns the best
// events/sec plus the last run's event count (identical across runs — the
// sim is deterministic).
func bestEventRate(t *testing.T, cfg world.Config, rounds int, tel func() *telemetry.Telemetry) (float64, uint64, uint64) {
	t.Helper()
	var best float64
	var events, samples uint64
	for r := 0; r < rounds; r++ {
		run := cfg
		var rec *telemetry.Telemetry
		if tel != nil {
			rec = tel()
			run.Telemetry = rec
		}
		w, err := world.New(run)
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		w.Run()
		wall := time.Since(start)
		if e := w.EventsExecuted(); events == 0 {
			events = e
		} else if e != events {
			t.Fatalf("round %d executed %d events, first run %d — workload not deterministic", r, e, events)
		}
		if rate := float64(events) / wall.Seconds(); rate > best {
			best = rate
		}
		if rec != nil {
			samples = 0
			for _, h := range rec.Histograms() {
				samples += h.H.Snapshot().Count
			}
		}
	}
	return best, events, samples
}

// TestBenchTelemetryOverhead measures the always-on recorder's cost and
// writes the snapshot to $LOCKSS_BENCH_OUT (skipped when unset). The <= 5%
// event-rate bound is asserted on every run.
func TestBenchTelemetryOverhead(t *testing.T) {
	out := os.Getenv("LOCKSS_BENCH_OUT")
	if out == "" {
		t.Skip("set LOCKSS_BENCH_OUT=path to run the telemetry-overhead snapshot")
	}
	cfg := telemetryBenchWorld(t)
	const rounds = 3

	bare, events, _ := bestEventRate(t, cfg, rounds, nil)
	withTel, _, samples := bestEventRate(t, cfg, rounds, telemetry.New)
	overhead := 1 - withTel/bare

	// The isolated record path: a tight Observe loop, measured the way
	// testing.Benchmark would but without a -bench invocation.
	var h telemetry.Histogram
	allocs := testing.AllocsPerRun(1000, func() { h.Observe(12345) })
	const spins = 10_000_000
	start := time.Now()
	for i := int64(0); i < spins; i++ {
		h.Observe(i)
	}
	perOp := float64(time.Since(start).Nanoseconds()) / spins

	rep := telemetryBenchReport{
		Peers:              cfg.Peers,
		AUs:                cfg.AUs,
		DurationDays:       float64(cfg.Duration) / float64(sim.Day),
		Events:             events,
		CPUs:               runtime.NumCPU(),
		GoMaxProcs:         runtime.GOMAXPROCS(0),
		Rounds:             rounds,
		BareEventsPerSec:   bare,
		TelEventsPerSec:    withTel,
		Overhead:           overhead,
		OverheadBound:      telemetryOverheadBound,
		UnderBound:         overhead <= telemetryOverheadBound,
		HistogramSamples:   samples,
		ObserveNsPerOp:     perOp,
		ObserveAllocsPerOp: allocs,
	}

	if samples == 0 {
		t.Error("telemetry run recorded no histogram samples — the recorder was not attached")
	}
	if allocs != 0 {
		t.Errorf("Histogram.Observe allocates %.1f per op, want 0", allocs)
	}
	if !rep.UnderBound {
		t.Errorf("telemetry overhead %.2f%% exceeds the %.0f%% bound (bare %.0f ev/s, with telemetry %.0f ev/s)",
			overhead*100, telemetryOverheadBound*100, bare, withTel)
	}
	t.Logf("bare %.0f ev/s, telemetry %.0f ev/s (overhead %.2f%%), %d samples, Observe %.1f ns/op %.1f allocs/op",
		bare, withTel, overhead*100, samples, perOp, allocs)

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
