package lockss

import (
	"bytes"
	"strings"
	"testing"
)

// TestFacadeBaseline exercises the public API end to end.
func TestFacadeBaseline(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Peers = 20
	cfg.AUs = 2
	cfg.AUSize = 16 << 20
	cfg.Duration = Year / 2
	cfg.DamageDiskYears = 1

	baseline, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if baseline.SuccessfulPolls == 0 {
		t.Fatal("no polls succeeded through the facade")
	}

	attack, err := Run(cfg, func() Adversary {
		return NewPipeStoppage(1.0, 60*Day, 30*Day)
	})
	if err != nil {
		t.Fatal(err)
	}
	cmp := Compare(attack, baseline)
	if cmp.DelayRatio <= 1 {
		t.Errorf("stoppage delay ratio %v should exceed 1", cmp.DelayRatio)
	}
}

func TestFacadeSeedsAndLayers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Peers = 15
	cfg.AUs = 2
	cfg.AUSize = 16 << 20
	cfg.Duration = Year / 4
	cfg.Protocol.Quorum = 5
	cfg.Protocol.InnerCircle = 10
	cfg.Protocol.MaxDisagree = 1
	cfg.DamageDiskYears = 1

	multi, err := RunSeeds(cfg, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if multi.TotalPolls == 0 {
		t.Error("multi-seed run produced nothing")
	}
	layered, err := RunLayered(cfg, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if layered.TotalPolls < multi.TotalPolls {
		t.Error("layered run should at least match a single run's polls")
	}
}

func TestFacadeAdversaryConstructors(t *testing.T) {
	for _, a := range []Adversary{
		NewPipeStoppage(0.5, Day, Day),
		NewAdmissionFlood(0.5, Day, Day),
		NewBruteForce(DefectIntro),
		NewBruteForce(DefectRemaining),
		NewBruteForce(DefectNone),
	} {
		if a.Name() == "" {
			t.Error("adversary with empty name")
		}
	}
}

func TestFacadeTableGeneration(t *testing.T) {
	if testing.Short() {
		t.Skip("table generation is slow")
	}
	opts := ExperimentOptions{Scale: ScaleTiny, Seeds: 1}
	tab, err := Table1(opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	PrintTable(&buf, tab)
	out := buf.String()
	for _, want := range []string{"Table 1", "INTRO", "REMAINING", "NONE"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in table output", want)
		}
	}
	if len(tab.Rows) != 6 { // 3 strategies x 2 collection sizes
		t.Errorf("Table 1 has %d rows, want 6", len(tab.Rows))
	}
}
