package lockss

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestFacadeBaseline exercises the public API end to end.
func TestFacadeBaseline(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Peers = 20
	cfg.AUs = 2
	cfg.AUSize = 16 << 20
	cfg.Duration = Year / 2
	cfg.DamageDiskYears = 1

	baseline, err := Run(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if baseline.SuccessfulPolls == 0 {
		t.Fatal("no polls succeeded through the facade")
	}

	attack, err := Run(context.Background(), cfg, func() Adversary {
		return NewPipeStoppage(1.0, 60*Day, 30*Day)
	})
	if err != nil {
		t.Fatal(err)
	}
	cmp := Compare(attack, baseline)
	if cmp.DelayRatio <= 1 {
		t.Errorf("stoppage delay ratio %v should exceed 1", cmp.DelayRatio)
	}
}

func TestFacadeSeedsAndLayers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Peers = 15
	cfg.AUs = 2
	cfg.AUSize = 16 << 20
	cfg.Duration = Year / 4
	cfg.Protocol.Quorum = 5
	cfg.Protocol.InnerCircle = 10
	cfg.Protocol.MaxDisagree = 1
	cfg.DamageDiskYears = 1

	multi, err := RunSeeds(context.Background(), cfg, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if multi.TotalPolls == 0 {
		t.Error("multi-seed run produced nothing")
	}
	layered, err := RunLayered(context.Background(), cfg, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if layered.TotalPolls < multi.TotalPolls {
		t.Error("layered run should at least match a single run's polls")
	}
}

func TestFacadeAdversaryConstructors(t *testing.T) {
	for _, a := range []Adversary{
		NewPipeStoppage(0.5, Day, Day),
		NewAdmissionFlood(0.5, Day, Day),
		NewBruteForce(DefectIntro),
		NewBruteForce(DefectRemaining),
		NewBruteForce(DefectNone),
	} {
		if a.Name() == "" {
			t.Error("adversary with empty name")
		}
	}
}

func TestFacadeTableGeneration(t *testing.T) {
	if testing.Short() {
		t.Skip("table generation is slow")
	}
	opts := ExperimentOptions{Scale: ScaleTiny, Seeds: 1}
	tab, err := Table1(opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	PrintTable(&buf, tab)
	out := buf.String()
	for _, want := range []string{"Table 1", "INTRO", "REMAINING", "NONE"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in table output", want)
		}
	}
	if len(tab.Rows) != 6 { // 3 strategies x 2 collection sizes
		t.Errorf("Table 1 has %d rows, want 6", len(tab.Rows))
	}
}

// TestFacadeGuards asserts the run helpers reject non-positive seeds and
// layers with descriptive errors.
func TestFacadeGuards(t *testing.T) {
	ctx := context.Background()
	cfg := DefaultConfig()
	if _, err := RunSeeds(ctx, cfg, nil, 0); err == nil || !strings.Contains(err.Error(), "seeds") {
		t.Errorf("RunSeeds(seeds=0): err = %v, want a seeds error", err)
	}
	if _, err := RunLayered(ctx, cfg, nil, -1); err == nil || !strings.Contains(err.Error(), "layers") {
		t.Errorf("RunLayered(layers=-1): err = %v, want a layers error", err)
	}
}

// TestFacadeScenario registers and runs a custom scenario through the
// public API — the README's extensibility walkthrough.
func TestFacadeScenario(t *testing.T) {
	spec := &Scenario{
		Name:        "facade-quorum-sweep",
		Description: "access failure vs quorum under a 60-day pipe stoppage",
		Base: func(o ExperimentOptions) Config {
			cfg := DefaultConfig()
			cfg.Peers = 15
			cfg.AUs = 2
			cfg.AUSize = 16 << 20
			cfg.Duration = Year / 4
			cfg.Protocol.InnerCircle = 10
			cfg.Protocol.MaxDisagree = 1
			cfg.DamageDiskYears = 1
			return cfg
		},
		Axes: []Axis{{
			Name:   "quorum",
			Values: []float64{3, 5},
			Apply:  func(cfg *Config, v float64) { cfg.Protocol.Quorum = int(v) },
		}},
		Attack: func(o ExperimentOptions, cfg Config, pt Point) Adversary {
			return NewPipeStoppage(1.0, 60*Day, 30*Day)
		},
		Seeds:   1,
		Compare: true,
	}
	if err := RegisterScenario(spec); err != nil {
		t.Fatal(err)
	}
	if _, ok := LookupScenario("facade-quorum-sweep"); !ok {
		t.Fatal("registered scenario not found")
	}
	found := false
	for _, s := range Scenarios() {
		if s.Name == "facade-quorum-sweep" {
			found = true
		}
	}
	if !found {
		t.Error("Scenarios() does not list the custom scenario")
	}

	res, err := RunScenario(context.Background(), spec, ExperimentOptions{Scale: ScaleTiny})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(res.Points))
	}
	for _, pr := range res.Points {
		if pr.Cmp == nil || pr.Stats.TotalPolls == 0 {
			t.Fatalf("point %+v incomplete", pr.Point)
		}
	}

	tables, err := RunScenarioTables(context.Background(), spec, ExperimentOptions{Scale: ScaleTiny})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	PrintTable(&buf, tables[0])
	var csvBuf, jsonBuf bytes.Buffer
	if err := tables[0].WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	if err := tables[0].WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	for _, out := range []string{buf.String(), csvBuf.String(), jsonBuf.String()} {
		if !strings.Contains(out, "quorum") {
			t.Errorf("rendered output missing the axis column:\n%s", out)
		}
	}
}
