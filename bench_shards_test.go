package lockss

// The shard-scaling snapshot: one 10k-peer simulation run per shard count,
// distilled into a machine-readable BENCH_9.json (events/sec, wall time,
// peak heap for shards = 1, 2, 4, 8). Like the storage snapshot in
// internal/store, it is a measurement first and a gate second: the two
// acceptance bounds it asserts are the shards=4 speedup (>= 2x, only on
// hosts with >= 4 CPUs — a single-core container cannot speed anything up)
// and the peak-heap ceiling. Determinism is always asserted: every shard
// count must execute exactly the same number of events and reach the same
// poll counts.
//
//	LOCKSS_BENCH_OUT=BENCH_9.json go test . -run TestBenchShardScaling -v
//
// LOCKSS_BENCH_PEERS and LOCKSS_BENCH_DAYS shrink the workload for smoke
// runs; the committed BENCH_9.json records the defaults.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"lockss/internal/experiment"
	"lockss/internal/sim"
	"lockss/internal/world"
)

// shardBenchHeapBound is the asserted peak-heap ceiling for the 10k-peer
// run at any shard count. The population itself (peers, proof caches,
// per-replica metrics) dominates; sharding adds only outbox slices and a
// handful of goroutines, so one bound covers every shard count.
const shardBenchHeapBound = 2 << 30

// shardRun is one row of the BENCH_9.json snapshot.
type shardRun struct {
	Shards        int     `json:"shards"`
	WallSeconds   float64 `json:"wall_seconds"`
	EventsPerSec  float64 `json:"events_per_sec"`
	PeakHeapBytes uint64  `json:"peak_heap_bytes"`
	Speedup       float64 `json:"speedup_vs_shards_1"`
}

// shardBenchReport is the BENCH_9.json schema.
type shardBenchReport struct {
	Peers          int        `json:"peers"`
	AUs            int        `json:"aus"`
	DurationDays   float64    `json:"duration_days"`
	Events         uint64     `json:"events_executed"`
	CPUs           int        `json:"cpus"`
	GoMaxProcs     int        `json:"gomaxprocs"`
	Runs           []shardRun `json:"runs"`
	HeapBoundBytes uint64     `json:"heap_bound_bytes"`
	HeapUnderBound bool       `json:"heap_under_bound"`
	// SpeedupAsserted records whether the >= 2x shards=4 bound was enforced
	// (false on hosts with fewer than 4 CPUs, where it cannot hold).
	SpeedupAsserted bool `json:"speedup_asserted"`
}

// peakHeapDuring runs f while a sampler goroutine watches HeapInuse, and
// returns f's wall time and the observed peak.
func peakHeapDuring(f func()) (time.Duration, uint64) {
	runtime.GC()
	var peak atomic.Uint64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			for {
				cur := peak.Load()
				if m.HeapInuse <= cur || peak.CompareAndSwap(cur, m.HeapInuse) {
					break
				}
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	start := time.Now()
	f()
	wall := time.Since(start)
	close(stop)
	<-done
	return wall, peak.Load()
}

// shardBenchWorld is the 10k-peer capacity workload: the ScaleHuge
// population shape at the issue's 10k operating point, attack-free.
func shardBenchWorld(t *testing.T) world.Config {
	cfg := experiment.Options{Scale: experiment.ScaleHuge}.BaseWorld()
	cfg.Peers = 10000
	if v := os.Getenv("LOCKSS_BENCH_PEERS"); v != "" {
		if _, err := fmt.Sscanf(v, "%d", &cfg.Peers); err != nil {
			t.Fatalf("bad LOCKSS_BENCH_PEERS %q: %v", v, err)
		}
	}
	if v := os.Getenv("LOCKSS_BENCH_DAYS"); v != "" {
		var days int
		if _, err := fmt.Sscanf(v, "%d", &days); err != nil {
			t.Fatalf("bad LOCKSS_BENCH_DAYS %q: %v", v, err)
		}
		cfg.Duration = sim.Duration(days) * sim.Day
	}
	return cfg
}

// TestBenchShardScaling runs the 10k-peer workload at shards = 1, 2, 4, 8
// and writes the snapshot to $LOCKSS_BENCH_OUT (skipped when unset — the
// full run is minutes of CPU).
func TestBenchShardScaling(t *testing.T) {
	out := os.Getenv("LOCKSS_BENCH_OUT")
	if out == "" {
		t.Skip("set LOCKSS_BENCH_OUT=path to run the shard-scaling snapshot")
	}
	base := shardBenchWorld(t)

	rep := shardBenchReport{
		Peers:          base.Peers,
		AUs:            base.AUs,
		DurationDays:   float64(base.Duration) / float64(sim.Day),
		CPUs:           runtime.NumCPU(),
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		HeapBoundBytes: shardBenchHeapBound,
		HeapUnderBound: true,
	}

	var refPolls, refAccess float64
	for _, shards := range []int{1, 2, 4, 8} {
		cfg := base
		cfg.Shards = shards
		var w *world.World
		wall, peak := peakHeapDuring(func() {
			var err error
			w, err = world.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			w.Run()
		})
		events := w.EventsExecuted()
		polls := float64(w.Metrics.SuccessfulPolls())
		access := w.Metrics.AccessFailureProbability()
		w = nil

		run := shardRun{
			Shards:        shards,
			WallSeconds:   wall.Seconds(),
			EventsPerSec:  float64(events) / wall.Seconds(),
			PeakHeapBytes: peak,
		}
		if shards == 1 {
			rep.Events = events
			refPolls, refAccess = polls, access
			run.Speedup = 1
		} else {
			run.Speedup = rep.Runs[0].WallSeconds / run.WallSeconds
			if events != rep.Events {
				t.Errorf("shards=%d executed %d events, shards=1 executed %d — sharding changed the run",
					shards, events, rep.Events)
			}
			if polls != refPolls || access != refAccess {
				t.Errorf("shards=%d stats diverge from shards=1: polls %v vs %v, access %v vs %v",
					shards, polls, refPolls, access, refAccess)
			}
		}
		if peak > shardBenchHeapBound {
			rep.HeapUnderBound = false
			t.Errorf("shards=%d peaked %d bytes of heap, bound is %d", shards, peak, shardBenchHeapBound)
		}
		t.Logf("shards=%d: %.1fs wall, %.0f events/s, peak heap %d MiB (speedup %.2fx)",
			shards, run.WallSeconds, run.EventsPerSec, peak>>20, run.Speedup)
		rep.Runs = append(rep.Runs, run)
	}

	// The >= 2x bound at shards=4 only makes sense with >= 4 CPUs to run
	// the shards on; single-core hosts record honest (flat) numbers instead.
	rep.SpeedupAsserted = runtime.NumCPU() >= 4
	if rep.SpeedupAsserted {
		if s := rep.Runs[2].Speedup; s < 2 {
			t.Errorf("shards=4 speedup %.2fx, want >= 2x on a %d-CPU host", s, runtime.NumCPU())
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
