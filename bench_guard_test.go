package lockss

// The bench guard pins the allocation budget of the simulation hot path.
//
// Every run in this file is a fixed-seed, single-goroutine simulation, so its
// malloc count is deterministic; the guard measures each workload once with
// runtime.ReadMemStats and compares against testdata/bench_baseline.json.
// A regression beyond the tolerance fails `go test -run TestBenchGuard .`
// (and therefore plain `go test ./...` and CI). After a deliberate
// improvement, ratchet the baseline down with
//
//	go test -run TestBenchGuard -update-bench .
//
// The workloads mirror the figure/table/ablation benchmarks in
// bench_test.go at their first iteration (seed 1), one simulation run per
// entry, so the guard stays a few seconds while covering the same hot path
// the benches measure.

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"testing"

	"lockss/internal/adversary"
	"lockss/internal/experiment"
	"lockss/internal/sched"
	"lockss/internal/sim"
	"lockss/internal/world"
)

var updateBench = flag.Bool("update-bench", false, "rewrite testdata/bench_baseline.json from the current measurements")

// benchGuardTolerance is the fractional headroom above the recorded
// allocation count before the guard fails. It absorbs run-to-run noise from
// the runtime (background sweeps, map growth timing) and small shifts across
// Go releases; genuine hot-path regressions are far larger.
const benchGuardTolerance = 0.15

const benchBaselinePath = "testdata/bench_baseline.json"

// guardWorkloads mirrors the bench suite's figure/table/ablation workloads,
// one simulation run each. Keys are stable identifiers recorded in the
// baseline file.
func guardWorkloads() []struct {
	Name string
	Run  func() error
} {
	run := func(mut func(cfg *world.Config), mk func() adversary.Adversary) func() error {
		return func() error {
			cfg := benchWorld()
			cfg.Seed = 1
			if mut != nil {
				mut(&cfg)
			}
			_, err := experiment.RunOne(cfg, mk)
			return err
		}
	}
	pulse := func(coverage float64, days int) func() adversary.Adversary {
		return func() adversary.Adversary {
			return &adversary.PipeStoppage{Pulse: adversary.Pulse{
				Coverage: coverage, Duration: sim.Duration(days) * sim.Day, Recuperation: 30 * sim.Day,
			}}
		}
	}
	flood := func(coverage float64, dur sim.Duration) func() adversary.Adversary {
		return func() adversary.Adversary {
			return &adversary.AdmissionFlood{Pulse: adversary.Pulse{
				Coverage: coverage, Duration: dur, Recuperation: 30 * sim.Day,
			}}
		}
	}
	brute := func(d adversary.Defection) func() adversary.Adversary {
		return func() adversary.Adversary { return &adversary.BruteForce{Defection: d} }
	}
	// scaled pins the capacity tiers' allocation behavior: the real
	// population shape (5k/20k peers, cold bootstrap) over a one-week
	// horizon, so the guard stays seconds while covering the construction
	// and steady-state paths that dominate at -scale large/huge.
	scaled := func(s experiment.Scale, days int) func() error {
		return func() error {
			cfg := experiment.Options{Scale: s}.BaseWorld()
			cfg.Duration = sim.Duration(days) * sim.Day
			_, err := experiment.RunOne(cfg, nil)
			return err
		}
	}
	full := benchWorld().Duration
	return []struct {
		Name string
		Run  func() error
	}{
		{"figure2-baseline", run(nil, nil)},
		{"figure3-pipe-stoppage", run(nil, pulse(1, 90))},
		{"figure4-pipe-stoppage-70", run(nil, pulse(0.7, 90))},
		{"figure5-pipe-stoppage-180d", run(nil, pulse(1, 180))},
		{"figure6-admission-flood", run(nil, flood(1, full))},
		{"figure7-admission-flood-40", run(nil, flood(0.4, 90*sim.Day))},
		{"table1-brute-force-intro", run(nil, brute(adversary.DefectIntro))},
		{"table1-brute-force-remaining", run(nil, brute(adversary.DefectRemaining))},
		{"table1-brute-force-none", run(nil, brute(adversary.DefectNone))},
		{"ablation-refractory-1day", run(func(cfg *world.Config) {
			cfg.Protocol.Refractory = sched.Duration(1 * int64(sim.Day))
		}, flood(1, full))},
		{"ablation-desynchronization-off", run(func(cfg *world.Config) {
			cfg.Protocol.Desynchronize = false
		}, brute(adversary.DefectRemaining))},
		{"ablation-effort-balancing-on", run(nil, brute(adversary.DefectNone))},
		{"scale-large-7d", scaled(experiment.ScaleLarge, 7)},
		{"scale-huge-7d", scaled(experiment.ScaleHuge, 7)},
	}
}

// countMallocs runs f once and returns the number of heap objects it
// allocated.
func countMallocs(f func() error) (uint64, error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	err := f()
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs, err
}

// TestBenchGuard fails when any guarded workload allocates more than the
// recorded baseline plus tolerance.
func TestBenchGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a dozen reduced-scale simulations")
	}
	measured := make(map[string]uint64)
	for _, w := range guardWorkloads() {
		allocs, err := countMallocs(w.Run)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		measured[w.Name] = allocs
	}

	if *updateBench {
		names := make([]string, 0, len(measured))
		for name := range measured {
			names = append(names, name)
		}
		sort.Strings(names)
		var buf []byte
		buf = append(buf, "{\n"...)
		for i, name := range names {
			comma := ","
			if i == len(names)-1 {
				comma = ""
			}
			buf = append(buf, fmt.Sprintf("  %q: %d%s\n", name, measured[name], comma)...)
		}
		buf = append(buf, "}\n"...)
		if err := os.MkdirAll(filepath.Dir(benchBaselinePath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(benchBaselinePath, buf, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	data, err := os.ReadFile(benchBaselinePath)
	if err != nil {
		t.Fatalf("missing allocation baseline (generate with -update-bench): %v", err)
	}
	baseline := make(map[string]uint64)
	if err := json.Unmarshal(data, &baseline); err != nil {
		t.Fatalf("parsing %s: %v", benchBaselinePath, err)
	}

	for _, w := range guardWorkloads() {
		want, ok := baseline[w.Name]
		if !ok {
			t.Errorf("%s: not in %s (regenerate with -update-bench)", w.Name, benchBaselinePath)
			continue
		}
		got := measured[w.Name]
		limit := want + uint64(float64(want)*benchGuardTolerance)
		switch {
		case got > limit:
			t.Errorf("%s: %d allocs, budget %d (+%.0f%% tolerance over baseline %d) — hot-path allocation regression",
				w.Name, got, limit, benchGuardTolerance*100, want)
		default:
			t.Logf("%s: %d allocs (baseline %d, budget %d)", w.Name, got, want, limit)
		}
	}
}
