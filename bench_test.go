package lockss

// The benchmark harness: one benchmark per table/figure of the paper's
// evaluation (each runs a representative data point of that experiment at
// reduced scale and reports the paper's metrics), the ablation benches
// DESIGN.md calls out, and micro-benchmarks of the substrates.
//
// Full-fidelity regeneration of every figure is the job of
// cmd/lockss-sim (-scale paper); benchmarks must stay cheap enough to run
// as a suite.

import (
	"context"
	"testing"

	"lockss/internal/adversary"
	"lockss/internal/effort"
	"lockss/internal/experiment"
	"lockss/internal/ids"
	"lockss/internal/netsim"
	"lockss/internal/prng"
	"lockss/internal/protocol"
	"lockss/internal/reputation"
	"lockss/internal/sched"
	"lockss/internal/sim"
	"lockss/internal/wire"
	"lockss/internal/world"

	"lockss/internal/content"
)

// benchWorld is the shared reduced-scale population for figure benches.
func benchWorld() world.Config {
	cfg := world.Default()
	cfg.Peers = 25
	cfg.AUs = 4
	cfg.AUSize = 64 << 20
	cfg.Duration = 1 * sim.Year
	cfg.DamageDiskYears = 5
	return cfg
}

func reportRun(b *testing.B, s experiment.RunStats) {
	b.ReportMetric(s.AccessFailure, "afp")
	b.ReportMetric(s.SuccessfulPolls, "polls-ok")
}

func reportCmp(b *testing.B, c experiment.Comparison) {
	b.ReportMetric(c.Attack.AccessFailure, "afp")
	b.ReportMetric(c.DelayRatio, "delay-ratio")
	b.ReportMetric(c.Friction, "friction")
	if c.CostRatio > 0 {
		b.ReportMetric(c.CostRatio, "cost-ratio")
	}
}

// BenchmarkFigure2Baseline regenerates a Figure 2 data point: baseline
// access failure at the 3-month interval, 5-disk-year damage rate.
func BenchmarkFigure2Baseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchWorld()
		cfg.Seed = uint64(i + 1)
		s, err := experiment.RunOne(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		reportRun(b, s)
	}
}

// benchAttackPoint runs baseline+attack once and reports the ratios.
func benchAttackPoint(b *testing.B, mk func() adversary.Adversary) {
	for i := 0; i < b.N; i++ {
		cfg := benchWorld()
		cfg.Seed = uint64(i + 1)
		baseline, err := experiment.RunOne(cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		attack, err := experiment.RunOne(cfg, mk)
		if err != nil {
			b.Fatal(err)
		}
		reportCmp(b, experiment.Compare(attack, baseline))
	}
}

// BenchmarkFigure3PipeStoppageAccess: pipe stoppage at 100% coverage for 90
// days (Figure 3's headline region — access failure).
func BenchmarkFigure3PipeStoppageAccess(b *testing.B) {
	benchAttackPoint(b, func() adversary.Adversary {
		return &adversary.PipeStoppage{Pulse: adversary.Pulse{Coverage: 1, Duration: 90 * sim.Day, Recuperation: 30 * sim.Day}}
	})
}

// BenchmarkFigure4DelayRatio: the same sweep point viewed as Figure 4
// (delay ratio), at 70% coverage.
func BenchmarkFigure4DelayRatio(b *testing.B) {
	benchAttackPoint(b, func() adversary.Adversary {
		return &adversary.PipeStoppage{Pulse: adversary.Pulse{Coverage: 0.7, Duration: 90 * sim.Day, Recuperation: 30 * sim.Day}}
	})
}

// BenchmarkFigure5Friction: Figure 5's coefficient of friction under a
// long, wide stoppage.
func BenchmarkFigure5Friction(b *testing.B) {
	benchAttackPoint(b, func() adversary.Adversary {
		return &adversary.PipeStoppage{Pulse: adversary.Pulse{Coverage: 1, Duration: 180 * sim.Day, Recuperation: 30 * sim.Day}}
	})
}

// BenchmarkFigure6AdmissionFlood: Figure 6's access failure under a
// sustained full-coverage admission-control attack.
func BenchmarkFigure6AdmissionFlood(b *testing.B) {
	benchAttackPoint(b, func() adversary.Adversary {
		return &adversary.AdmissionFlood{Pulse: adversary.Pulse{Coverage: 1, Duration: benchWorld().Duration, Recuperation: 30 * sim.Day}}
	})
}

// BenchmarkFigure7AdmissionDelay: Figure 7's delay ratio at 40% coverage.
func BenchmarkFigure7AdmissionDelay(b *testing.B) {
	benchAttackPoint(b, func() adversary.Adversary {
		return &adversary.AdmissionFlood{Pulse: adversary.Pulse{Coverage: 0.4, Duration: 90 * sim.Day, Recuperation: 30 * sim.Day}}
	})
}

// BenchmarkFigure8AdmissionFriction: Figure 8's coefficient of friction
// under the sustained flood.
func BenchmarkFigure8AdmissionFriction(b *testing.B) {
	benchAttackPoint(b, func() adversary.Adversary {
		return &adversary.AdmissionFlood{Pulse: adversary.Pulse{Coverage: 1, Duration: benchWorld().Duration, Recuperation: 30 * sim.Day}}
	})
}

// BenchmarkTable1BruteForce runs all three defection strategies of Table 1.
func BenchmarkTable1BruteForce(b *testing.B) {
	for _, d := range []adversary.Defection{adversary.DefectIntro, adversary.DefectRemaining, adversary.DefectNone} {
		d := d
		b.Run(d.String(), func(b *testing.B) {
			benchAttackPoint(b, func() adversary.Adversary {
				return &adversary.BruteForce{Defection: d}
			})
		})
	}
}

// --- Ablation benches (design choices called out in DESIGN.md) -------------

func BenchmarkAblationRefractory(b *testing.B) {
	for _, days := range []int64{1, 4} {
		days := days
		b.Run(map[int64]string{1: "1day", 4: "4days"}[days], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchWorld()
				cfg.Protocol.Refractory = sched.Duration(days * int64(sim.Day))
				s, err := experiment.RunOne(cfg, func() adversary.Adversary {
					return &adversary.AdmissionFlood{Pulse: adversary.Pulse{Coverage: 1, Duration: cfg.Duration, Recuperation: 30 * sim.Day}}
				})
				if err != nil {
					b.Fatal(err)
				}
				reportRun(b, s)
			}
		})
	}
}

func BenchmarkAblationDropProb(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchWorld()
		cfg.Protocol.DropUnknown = 0.5
		cfg.Protocol.DropDebt = 0.4
		attack, err := experiment.RunOne(cfg, func() adversary.Adversary {
			return &adversary.BruteForce{Defection: adversary.DefectRemaining}
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(attack.AttackerEffort/attack.DefenderEffort, "cost-ratio")
	}
}

func BenchmarkAblationIntroductions(b *testing.B) {
	for _, on := range []bool{true, false} {
		on := on
		name := "on"
		if !on {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchWorld()
				cfg.Protocol.Introductions = on
				s, err := experiment.RunOne(cfg, func() adversary.Adversary {
					return &adversary.AdmissionFlood{Pulse: adversary.Pulse{Coverage: 1, Duration: cfg.Duration, Recuperation: 30 * sim.Day}}
				})
				if err != nil {
					b.Fatal(err)
				}
				reportRun(b, s)
			}
		})
	}
}

func BenchmarkAblationDesynchronization(b *testing.B) {
	for _, on := range []bool{true, false} {
		on := on
		name := "on"
		if !on {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchWorld()
				cfg.Protocol.Desynchronize = on
				s, err := experiment.RunOne(cfg, func() adversary.Adversary {
					return &adversary.BruteForce{Defection: adversary.DefectRemaining}
				})
				if err != nil {
					b.Fatal(err)
				}
				reportRun(b, s)
			}
		})
	}
}

func BenchmarkAblationEffortBalancing(b *testing.B) {
	for _, on := range []bool{true, false} {
		on := on
		name := "on"
		if !on {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchWorld()
				cfg.Protocol.EffortBalancing = on
				attack, err := experiment.RunOne(cfg, func() adversary.Adversary {
					return &adversary.BruteForce{Defection: adversary.DefectNone}
				})
				if err != nil {
					b.Fatal(err)
				}
				if attack.DefenderEffort > 0 {
					b.ReportMetric(attack.AttackerEffort/attack.DefenderEffort, "cost-ratio")
				}
			}
		})
	}
}

// BenchmarkRunScenario measures the declarative scenario path end to end: a
// three-point coverage sweep with per-point baseline comparison on the
// reduced-scale population. The shared baseline memoizes, so the benchmark
// reflects grid fan-out plus one baseline and three attack runs.
func BenchmarkRunScenario(b *testing.B) {
	spec := &experiment.Scenario{
		Name:        "bench-coverage-sweep",
		Description: "pipe stoppage coverage sweep",
		Base: func(o experiment.Options) world.Config {
			cfg := benchWorld()
			cfg.Seed = 1 + o.BaseSeed
			return cfg
		},
		Axes: []experiment.Axis{{
			Name:   "coverage",
			Values: []float64{0.4, 0.7, 1.0},
		}},
		Attack: func(o experiment.Options, cfg world.Config, pt experiment.Point) adversary.Adversary {
			return &adversary.PipeStoppage{Pulse: adversary.Pulse{
				Coverage: pt.At(0), Duration: 90 * sim.Day, Recuperation: 30 * sim.Day,
			}}
		},
		Seeds:   1,
		Compare: true,
	}
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunScenario(context.Background(), spec, experiment.Options{
			Scale: experiment.ScaleTiny, BaseSeed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		last := res.Points[len(res.Points)-1]
		b.ReportMetric(last.Stats.AccessFailure, "afp")
		b.ReportMetric(last.Cmp.DelayRatio, "delay-ratio")
	}
}

// --- Micro-benchmarks of the substrates -------------------------------------

func BenchmarkEngineEventThroughput(b *testing.B) {
	e := sim.NewEngine()
	n := 0
	var chain func()
	chain = func() {
		n++
		if n < b.N {
			e.After(1, chain)
		}
	}
	b.ResetTimer()
	e.After(1, chain)
	e.Run(sim.Time(int64(b.N) + 10))
}

func BenchmarkSchedulerReserveRelease(b *testing.B) {
	s := sched.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, _, ok := s.ReserveSlot(sched.Time(i*10), 5, sched.Time(i*10+1000), "b")
		if !ok {
			b.Fatal("no slot")
		}
		if i%2 == 0 {
			s.Release(id)
		}
		if i%100 == 99 {
			s.GC(sched.Time(i * 10))
		}
	}
}

func BenchmarkMBFGenerate(b *testing.B) {
	m := effort.NewMBF(effort.DefaultMBFParams())
	ctx := []byte("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Generate(ctx, 1, 1)
	}
}

func BenchmarkMBFVerify(b *testing.B) {
	m := effort.NewMBF(effort.DefaultMBFParams())
	ctx := []byte("bench")
	p, _ := m.Generate(ctx, 1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !m.Verify(p, ctx) {
			b.Fatal("verify failed")
		}
	}
}

func BenchmarkVoteHashesReal(b *testing.B) {
	spec := content.AUSpec{ID: 1, Name: "b", Size: 4 << 20, BlockSize: 64 << 10}
	r := content.NewRealReplica(spec, 1)
	nonce := []byte("nonce")
	b.SetBytes(spec.Size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.VoteHashes(nonce)
	}
}

func BenchmarkVoteCompareSymbolic(b *testing.B) {
	spec := content.AUSpec{ID: 1, Name: "b", Size: 512 << 20, BlockSize: 1 << 20}
	a := content.NewSimReplica(spec, 1)
	c := content.NewSimReplica(spec, 2)
	c.Damage(100)
	va := protocol.VoteDataOf(a, nil)
	vc := protocol.VoteDataOf(c, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if vc.FirstDisagreement(va) != 100 {
			b.Fatal("comparison wrong")
		}
	}
}

func BenchmarkWireEncodeDecodeVote(b *testing.B) {
	m := &protocol.Msg{
		Type: protocol.MsgVote, AU: 1, PollID: 7, Poller: 1, Voter: 2,
		Vote:        protocol.SimVote{NumBlocks: 512, Dam: []content.DamageEntry{{Block: 3, Mark: 9}}},
		Nominations: []ids.PeerID{3, 4, 5, 6, 7, 8, 9, 10},
		Proof:       effort.SimProof{Effort: 0.02, Genuine: true},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := wire.Encode(m)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := wire.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReputationConsider(b *testing.B) {
	l := reputation.NewList(reputation.DefaultParams(reputation.Duration(24*3600*1e9), reputation.Duration(90*24*3600*1e9)))
	rnd := prng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Consider(reputation.Time(i)*1000, ids.PeerID(uint32(i%1000+1)), rnd)
	}
}

func BenchmarkNetsimSend(b *testing.B) {
	eng := sim.NewEngine()
	net := netsim.New(eng)
	sink := 0
	net.AddNode(1, netsim.Link{Bandwidth: netsim.FastEth, Latency: sim.Millisecond}, func(ids.PeerID, any, int) { sink++ })
	net.AddNode(2, netsim.Link{Bandwidth: netsim.FastEth, Latency: sim.Millisecond}, func(ids.PeerID, any, int) { sink++ })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Send(1, 2, i, 100)
		if i%1024 == 1023 {
			eng.Run(sim.Time(1<<62) - 1)
		}
	}
	eng.Run(sim.Time(1<<62) - 1)
}

// BenchmarkFullPollRound measures one complete simulated poll round for a
// small population — the unit of work everything else multiplies.
func BenchmarkFullPollRound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchWorld()
		cfg.Seed = uint64(i + 1)
		cfg.AUs = 1
		cfg.Duration = sim.Duration(cfg.Protocol.PollInterval) * 2
		cfg.DamageDiskYears = 0
		if _, err := experiment.RunOne(cfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Extension benches (§9 future work) -------------------------------------

// BenchmarkExtensionChurn measures a run with newcomers joining over time.
func BenchmarkExtensionChurn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := benchWorld()
		cfg.Seed = uint64(i + 1)
		w, err := world.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		stats := w.EnableChurn(world.Churn{JoinPerYear: 6, MaxJoins: 5, FriendsPerJoiner: 4})
		w.Run()
		b.ReportMetric(float64(stats.Integrated), "integrated")
		b.ReportMetric(float64(stats.NewcomerPollsOK), "newcomer-polls")
	}
}

// BenchmarkExtensionAdaptive measures the adaptive-acceptance defense under
// the brute-force REMAINING attack.
func BenchmarkExtensionAdaptive(b *testing.B) {
	for _, on := range []bool{false, true} {
		on := on
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchWorld()
				cfg.Protocol.AdaptiveAcceptance = on
				cfg.Protocol.AdaptiveGain = 100
				baseline, err := experiment.RunOne(cfg, nil)
				if err != nil {
					b.Fatal(err)
				}
				attack, err := experiment.RunOne(cfg, func() adversary.Adversary {
					return &adversary.BruteForce{Defection: adversary.DefectRemaining}
				})
				if err != nil {
					b.Fatal(err)
				}
				reportCmp(b, experiment.Compare(attack, baseline))
			}
		})
	}
}
