// Custom scenario: the declarative experiment API beyond the paper's
// figures. Registers a sweep the original evaluation never ran — access
// failure versus poll quorum under a fixed pipe-stoppage attack — and runs
// it through the same worker-pool engine, cancellation and rendering that
// power the built-in scenarios.
package main

import (
	"context"
	"log"
	"os"

	"lockss"
)

func main() {
	ctx := context.Background()

	spec := &lockss.Scenario{
		Name:        "quorum-under-stoppage",
		Description: "access failure vs poll quorum under a 90-day pipe stoppage",
		// A small population so the example runs in seconds.
		Base: func(o lockss.ExperimentOptions) lockss.Config {
			cfg := lockss.DefaultConfig()
			cfg.Peers = 30
			cfg.AUs = 4
			cfg.AUSize = 64 << 20
			cfg.Duration = 1 * lockss.Year
			cfg.DamageDiskYears = 1
			return cfg
		},
		// Sweep any numeric parameter: here, the landslide quorum.
		Axes: []lockss.Axis{{
			Name:   "quorum",
			Values: []float64{6, 8, 10, 12},
			Apply:  func(cfg *lockss.Config, v float64) { cfg.Protocol.Quorum = int(v) },
		}},
		// A fresh adversary per seeded run.
		Attack: func(o lockss.ExperimentOptions, cfg lockss.Config, pt lockss.Point) lockss.Adversary {
			return lockss.NewPipeStoppage(1.0, 90*lockss.Day, 30*lockss.Day)
		},
		Seeds: 2,
		// Also run each point attack-free and derive the paper's metrics.
		Compare: true,
	}
	if err := lockss.RegisterScenario(spec); err != nil {
		log.Fatal(err)
	}

	// Structured results: one PointResult per grid cell.
	res, err := lockss.RunScenario(ctx, spec, lockss.ExperimentOptions{Scale: lockss.ScaleTiny})
	if err != nil {
		log.Fatal(err)
	}
	for _, pr := range res.Points {
		log.Printf("quorum=%.0f afp=%.2e delay-ratio=%.2f",
			pr.Point.At(0), pr.Stats.AccessFailure, pr.Cmp.DelayRatio)
	}

	// Or rendered: the generic table renderer handles any scenario.
	tables, err := lockss.RunScenarioTables(ctx, spec, lockss.ExperimentOptions{Scale: lockss.ScaleTiny})
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range tables {
		lockss.PrintTable(os.Stdout, t)
	}
}
