// Preservation scenario: a library consortium preserving e-journals over
// several years of bit rot at different poll frequencies — the trade-off the
// paper's Figure 2 quantifies. Shows how the inter-poll interval bounds the
// window during which readers can see damaged content.
package main

import (
	"context"
	"fmt"
	"log"

	"lockss"
)

func main() {
	ctx := context.Background()
	fmt.Println("Library consortium: 40 peers x 8 journal-years, 2 simulated years")
	fmt.Println("Storage layer: one bad block per disk-year (pessimistic)")
	fmt.Println()
	fmt.Printf("%-18s %-16s %-14s %-10s\n", "poll interval", "access-failure", "damage fixed", "alarms")

	for _, months := range []int{1, 3, 6, 12} {
		cfg := lockss.DefaultConfig()
		cfg.Peers = 40
		cfg.AUs = 8
		cfg.AUSize = 64 << 20
		cfg.Duration = 2 * lockss.Year
		cfg.DamageDiskYears = 1
		cfg.Protocol.PollInterval = lockss.Duration(months) * lockss.Month
		cfg.Protocol.GradeDecay = cfg.Protocol.PollInterval

		res, err := lockss.Run(ctx, cfg, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %-16.2e %3.0f of %-6.0f %-10.0f\n",
			fmt.Sprintf("%d months", months), res.AccessFailure,
			res.RepairsFixed, res.DamageEvents, res.Alarms)
	}
	fmt.Println()
	fmt.Println("Reading the table: longer poll intervals leave bit rot undetected")
	fmt.Println("longer, raising the probability a reader hits a damaged replica —")
	fmt.Println("the system trades auditing effort against access reliability.")
}
