// Quickstart: build a small preservation network, run it for a simulated
// year, and print what the audit protocol accomplished.
package main

import (
	"context"
	"fmt"
	"log"

	"lockss"
)

func main() {
	ctx := context.Background()
	// A small community: 30 libraries preserving 5 journal-years of 64 MiB
	// each, auditing every 3 months, with a realistically lousy storage
	// layer (one bad block per disk-year).
	cfg := lockss.DefaultConfig()
	cfg.Peers = 30
	cfg.AUs = 5
	cfg.AUSize = 64 << 20
	cfg.Duration = 1 * lockss.Year
	cfg.DamageDiskYears = 1

	results, err := lockss.Run(ctx, cfg, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("LOCKSS quickstart: 30 peers x 5 AUs, 1 simulated year")
	fmt.Printf("  polls succeeded:          %.0f of %.0f\n", results.SuccessfulPolls, results.TotalPolls)
	fmt.Printf("  mean time between polls:  %.1f days\n", results.MeanSuccessGap)
	fmt.Printf("  storage damage events:    %.0f\n", results.DamageEvents)
	fmt.Printf("  repaired by the protocol: %.0f\n", results.RepairsFixed)
	fmt.Printf("  access failure prob.:     %.2e\n", results.AccessFailure)
	fmt.Printf("  inconclusive-poll alarms: %.0f\n", results.Alarms)
	fmt.Printf("  effort per successful poll: %.0f effort-seconds\n", results.EffortPerPoll)
}
