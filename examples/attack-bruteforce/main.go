// Brute-force application-level attack scenario: an adversary with
// unlimited compute passes admission control with valid introductory
// efforts from in-debt identities and then defects at different protocol
// stages — a miniature of the paper's Table 1.
package main

import (
	"context"
	"fmt"
	"log"

	"lockss"
)

func main() {
	ctx := context.Background()
	cfg := lockss.DefaultConfig()
	cfg.Peers = 30
	cfg.AUs = 5
	cfg.AUSize = 64 << 20
	cfg.Duration = 1 * lockss.Year
	cfg.DamageDiskYears = 5

	baseline, err := lockss.Run(ctx, cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Brute-force effortful attrition: one admitted invitation per victim")
	fmt.Println("per refractory period, from in-debt identities, schedule oracle on.")
	fmt.Println()
	fmt.Printf("%-11s %-10s %-11s %-12s %-16s %-14s\n",
		"defection", "friction", "cost-ratio", "delay-ratio", "access-failure", "polls ok/total")
	fmt.Printf("%-11s %-10s %-11s %-12s %-16.2e %.0f/%.0f\n", "(baseline)", "1.00", "-", "1.00",
		baseline.AccessFailure, baseline.SuccessfulPolls, baseline.TotalPolls)

	for _, d := range []lockss.Defection{lockss.DefectIntro, lockss.DefectRemaining, lockss.DefectNone} {
		d := d
		res, err := lockss.Run(ctx, cfg, func() lockss.Adversary { return lockss.NewBruteForce(d) })
		if err != nil {
			log.Fatal(err)
		}
		cmp := lockss.Compare(res, baseline)
		fmt.Printf("%-11v %-10.2f %-11.2f %-12.2f %-16.2e %.0f/%.0f\n",
			d, cmp.Friction, cmp.CostRatio, cmp.DelayRatio, res.AccessFailure,
			res.SuccessfulPolls, res.TotalPolls)
	}
	fmt.Println()
	fmt.Println("Rate limits cap the attacker's reach: friction rises (victims do")
	fmt.Println("attacker-imposed work) but polls keep succeeding and the access")
	fmt.Println("failure probability barely moves — the paper's §7.4 conclusion.")
}
