// Command durable-store walks through the on-disk AU store by itself, no
// network involved: ingest, silent bit rot, scrub detection, and a crash-safe
// repair from a second replica.
//
//	go run ./examples/durable-store
//
// The real node wires the same pieces to the audit protocol: run
// `lockss-node -data-dir ... -inject-damage ...` for the networked version
// of this walkthrough.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"lockss/internal/content"
	"lockss/internal/store"
)

func main() {
	log.SetFlags(0)
	root, err := os.MkdirTemp("", "lockss-durable-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)

	spec := content.AUSpec{ID: 1, Name: "J. Irreproducible Results 2004", Size: 256 << 10, BlockSize: 32 << 10}

	// Two libraries ingest the same publication into their own stores.
	libA, err := store.Open(root + "/library-a")
	if err != nil {
		log.Fatal(err)
	}
	defer libA.Close()
	libB, err := store.Open(root + "/library-b")
	if err != nil {
		log.Fatal(err)
	}
	defer libB.Close()
	pub := content.PublisherBytes(spec)
	a, err := libA.Create(spec, 1, pub)
	if err != nil {
		log.Fatal(err)
	}
	b, err := libB.Create(spec, 2, pub)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %q: %d blocks of %d bytes at two libraries\n",
		spec.Name, spec.Blocks(), spec.BlockSize)

	// Decades pass (sped up): library A's disk rots silently at block 3 —
	// real bits flip in blocks.dat, the manifest still vouches for the old
	// content, and no damage mark exists anywhere.
	if err := libA.InjectDamage(spec.ID, 3); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("silent bit rot injected at block 3; replica believes damaged=%v\n", a.Damaged())

	// The background scrubber finds it the honest way: paced sequential
	// verification against the manifest digests.
	libA.StartScrub(store.ScrubConfig{
		Pace: time.Millisecond,
		OnDamage: func(au content.AUID, block int) {
			fmt.Printf("scrub: AU %d block %d does not match its manifest\n", au, block)
		},
	})
	for !a.Damaged() {
		time.Sleep(5 * time.Millisecond)
	}
	libA.StopScrub()
	st := libA.Stats()
	fmt.Printf("scrub stats: scanned=%d verified=%d damaged=%d\n",
		st.BlocksScanned, st.BlocksVerified, st.BlocksDamaged)

	// In the real system an opinion poll now confirms the damage against
	// the other libraries' votes and fetches the block from a voter in the
	// landslide majority. Here we play both sides by hand.
	data, err := b.RepairBlock(3)
	if err != nil {
		log.Fatal(err)
	}
	if err := a.ApplyRepair(3, data); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repair applied; replica damaged=%v\n", a.Damaged())

	// The write path was crash-safe (block bytes fsynced before the
	// manifest replaced atomically), and the whole store verifies again.
	dam := libA.VerifyAll()
	if dam == nil {
		fmt.Println("library A verifies: every block matches its manifest again")
	} else {
		fmt.Printf("library A still damaged: %v\n", dam)
	}
}
