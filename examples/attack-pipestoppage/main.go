// Pipe stoppage attack scenario: a network-level adversary floods a growing
// fraction of the peer population for 90-day stretches. Reproduces the
// qualitative claim of §7.2: only intense, wide and long attacks move the
// needle, and peers recover from the untargeted part of the population.
package main

import (
	"context"
	"fmt"
	"log"

	"lockss"
)

func main() {
	ctx := context.Background()
	cfg := lockss.DefaultConfig()
	cfg.Peers = 30
	cfg.AUs = 5
	cfg.AUSize = 64 << 20
	cfg.Duration = 2 * lockss.Year
	cfg.DamageDiskYears = 1

	baseline, err := lockss.Run(ctx, cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Pipe stoppage: repeated 90-day total-communication blackouts,")
	fmt.Println("30-day recuperation, fresh random victim set each pulse.")
	fmt.Println()
	fmt.Printf("%-10s %-16s %-12s %-12s %-14s\n", "coverage", "access-failure", "delay-ratio", "friction", "polls ok/total")
	fmt.Printf("%-10s %-16.2e %-12s %-12s %.0f/%.0f\n", "baseline", baseline.AccessFailure, "1.00", "1.00",
		baseline.SuccessfulPolls, baseline.TotalPolls)

	for _, cov := range []float64{0.1, 0.4, 0.7, 1.0} {
		cov := cov
		res, err := lockss.Run(ctx, cfg, func() lockss.Adversary {
			return lockss.NewPipeStoppage(cov, 90*lockss.Day, 30*lockss.Day)
		})
		if err != nil {
			log.Fatal(err)
		}
		cmp := lockss.Compare(res, baseline)
		fmt.Printf("%-10s %-16.2e %-12.2f %-12.2f %.0f/%.0f\n",
			fmt.Sprintf("%.0f%%", cov*100), res.AccessFailure, cmp.DelayRatio, cmp.Friction,
			res.SuccessfulPolls, res.TotalPolls)
	}
	fmt.Println()
	fmt.Println("Victims cannot audit while stopped, but recover from untargeted")
	fmt.Println("peers between pulses; only near-total coverage sustained for months")
	fmt.Println("raises the access failure probability appreciably (paper §7.2).")
}
